// Range-partitioned subcompactions (DESIGN.md §10): output equivalence with
// splitting on vs off, crash recovery at crash.subcompaction.mid with no
// orphan SSTs left behind, report determinism with splits enabled, and the
// worker park/shutdown accounting around SetCompactionThreads.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "check/db_checker.h"
#include "common/random.h"
#include "harness/report_json.h"
#include "harness/workload.h"
#include "lsm/db.h"
#include "sim/fault.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::SimWorld;
using test::TestKey;

// Seeded put/overwrite/delete mix sized to push several L0->L1 jobs past the
// split threshold (SmallDbOptions: 2 * 256 KiB). Appends the surviving state
// into `model`.
void RunMixedWorkload(lsm::DB* db, std::map<std::string, uint64_t>* model) {
  Random64 rng(0x5CA1AB1E);
  for (int i = 0; i < 1500; i++) {
    std::string key = TestKey(rng.Uniform(500));
    if (rng.Uniform(10) == 0) {
      ASSERT_TRUE(db->Delete({}, key).ok());
      model->erase(key);
    } else {
      uint64_t seed = 1 + i;
      ASSERT_TRUE(db->Put({}, key, Value::Synthetic(seed, 4096)).ok());
      (*model)[key] = seed;
    }
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->WaitForCompactionIdle().ok());
}

std::map<std::string, uint64_t> DumpDb(lsm::DB* db) {
  std::map<std::string, uint64_t> out;
  auto it = db->NewIterator({});
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out[it->key().ToString()] = Value::DecodeOrDie(it->value()).seed();
  }
  EXPECT_TRUE(it->status().ok());
  return out;
}

// The split decision must be invisible in the output: the same workload run
// with subcompactions on and off yields the same live key/value set, and
// both on-disk images pass the full consistency check.
TEST(SubcompactionTest, OutputEquivalentWithSplittingOnAndOff) {
  std::map<std::string, uint64_t> model_split, model_plain;
  std::map<std::string, uint64_t> dump_split, dump_plain;

  {
    SimWorld world;
    lsm::DbOptions opts = test::SmallDbOptions();  // max_subcompactions = 4
    world.Run([&] {
      std::unique_ptr<lsm::DB> db;
      ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
      RunMixedWorkload(db.get(), &model_split);
      EXPECT_GT(db->stats().split_compactions, 0u)
          << "workload never exercised the split path";
      EXPECT_GE(db->stats().subcompaction_count,
                2 * db->stats().split_compactions);
      dump_split = DumpDb(db.get());
      ASSERT_TRUE(db->Close().ok());
      db.reset();
      check::DbChecker checker(opts, world.MakeDbEnv());
      check::CheckReport report = checker.Check();
      EXPECT_TRUE(report.ok()) << report.ToString();
    });
  }
  {
    SimWorld world;
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.max_subcompactions = 1;  // force every job down the single-range path
    world.Run([&] {
      std::unique_ptr<lsm::DB> db;
      ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
      RunMixedWorkload(db.get(), &model_plain);
      EXPECT_EQ(db->stats().split_compactions, 0u);
      EXPECT_EQ(db->stats().subcompaction_count, 0u);
      dump_plain = DumpDb(db.get());
      ASSERT_TRUE(db->Close().ok());
      db.reset();
      check::DbChecker checker(opts, world.MakeDbEnv());
      check::CheckReport report = checker.Check();
      EXPECT_TRUE(report.ok()) << report.ToString();
    });
  }

  EXPECT_EQ(model_split, model_plain);  // same deterministic workload
  EXPECT_EQ(dump_split, model_split);
  EXPECT_EQ(dump_plain, model_plain);
  EXPECT_EQ(dump_split, dump_plain);
}

// Crash mid-way through one sub-range: all of the job's outputs must vanish
// (the single VersionEdit never installed), recovery must serve every
// acknowledged write, and the first reopen must reap every stranded SST —
// verified by a second reopen finding nothing left to remove.
TEST(SubcompactionTest, CrashMidSubcompactionRecoversWithNoOrphans) {
  SimWorld world;
  world.Run([&] {
    sim::FaultInjector inj(&world.env, 0xD1ED);
    world.env.set_fault_injector(&inj);
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.wal_sync = true;

    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());

    sim::FaultRule rule;
    rule.nth_hit = 120;
    rule.max_fires = 1;
    inj.Arm("crash.subcompaction.mid", rule);

    std::map<std::string, uint64_t> acked;
    bool crashed = false;
    for (int i = 0; i < 500 && !crashed; i++) {
      std::string key = TestKey(i % 120);
      uint64_t seed = 1000 + i;
      Status s = db->Put({}, key, Value::Synthetic(seed, 4096));
      if (s.ok()) {
        acked[key] = seed;
      } else {
        crashed = true;
      }
      if (!db->GetBackgroundError().ok()) crashed = true;
    }
    EXPECT_EQ(inj.fires("crash.subcompaction.mid"), 1u)
        << "crash site never reached";
    inj.Disarm("crash.subcompaction.mid");

    (void)db->Close();  // the machine is "dead": tolerate errors
    db.reset();
    world.fs->DropAllDirty();
    inj.ClearCrash();

    // First reopen: recovery replays the WAL and reaps stranded files.
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (const auto& [key, seed] : acked) {
      Value v;
      ASSERT_TRUE(db->Get({}, key, &v).ok()) << key;
      EXPECT_GE(v.seed(), seed) << key;
      EXPECT_EQ(v.logical_size(), 4096u) << key;
    }
    ASSERT_TRUE(db->Close().ok());
    db.reset();

    check::DbChecker checker(opts, world.MakeDbEnv());
    check::CheckReport report = checker.Check();
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.manifest_edits, 0);

    // Second reopen: a clean image has nothing stranded, so the first one
    // must have removed every orphan the crash left behind.
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());
    EXPECT_EQ(db->stats().orphan_files_removed, 0u)
        << "first recovery left orphan files behind";
    ASSERT_TRUE(db->Close().ok());
  });
}

// Two identical-seed dbbench runs with subcompactions enabled produce
// byte-identical kvaccel-run-v1 reports (ISSUE acceptance: the split actors
// must not introduce scheduling nondeterminism).
TEST(SubcompactionTest, IdenticalSeedRunsProduceByteIdenticalReports) {
  harness::BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = harness::SystemKind::kRocksDB;
  c.sut.compaction_threads = 4;
  c.sut.max_subcompactions = 4;
  // Shrink the split threshold so the short run reliably range-partitions.
  c.sut.db_tweak = [](lsm::DbOptions& o) { o.max_subcompaction_input = 64 << 10; };
  c.workload.type = harness::WorkloadConfig::Type::kFillRandom;
  c.workload.duration = FromSecs(5);

  harness::RunResult r1 = harness::RunBenchmark(c);
  harness::RunResult r2 = harness::RunBenchmark(c);
  EXPECT_GT(r1.split_compactions, 0u) << "run never split a compaction";
  EXPECT_GT(r1.subcompactions, 0u);

  std::string report1 = harness::JsonReportString(c, {r1});
  std::string report2 = harness::JsonReportString(c, {r2});
  EXPECT_EQ(report1, report2);
  EXPECT_NE(report1.find("\"schema\":\"kvaccel-run-v1\""), std::string::npos);
  EXPECT_NE(report1.find("\"split_compactions\""), std::string::npos);
}

// Shrinking the thread budget parks workers; growing it must wake them
// (satellite 1: SetCompactionThreads used to skip the notify, leaving grown
// budgets undiscovered until an unrelated wakeup). A wedged worker shows up
// here as a simulated-deadlock failure in WaitForCompactionIdle or Close.
TEST(CompactionWorkersTest, ParkedWorkerResumesAfterBudgetGrows) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 4;
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());

    db->SetCompactionThreads(1);
    EXPECT_EQ(db->compaction_threads(), 1);
    // Build a compaction backlog under the lone worker.
    for (int i = 0; i < 600; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i % 200), Value::Synthetic(i, 4096)).ok());
    }
    // Grow the budget back: the three parked workers must wake and help
    // drain the queue rather than sleep until the next flush notify.
    db->SetCompactionThreads(4);
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    EXPECT_GT(db->stats().compaction_count, 0u);

    Value v;
    ASSERT_TRUE(db->Get({}, TestKey(199), &v).ok());
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(CompactionWorkersTest, ShrinkDuringBacklogDoesNotWedgeWaiters) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions opts = test::SmallDbOptions();
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(opts, world.MakeDbEnv(), &db).ok());

    // Shrink while jobs are (likely) in flight, then wait for idle: the
    // waiter must see the queue drain even though the worker that finishes
    // last may be one that is about to park.
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i % 150), Value::Synthetic(i, 4096)).ok());
    }
    db->SetCompactionThreads(1);
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());

    // And a shrink with an already-empty queue must leave Close clean.
    db->SetCompactionThreads(2);
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel
