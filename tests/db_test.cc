#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "lsm/db.h"
#include "tests/test_util.h"

namespace kvaccel::lsm {
namespace {

using test::SimWorld;
using test::TestKey;

TEST(DbTest, PutGetDelete) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    ASSERT_TRUE(db->Put({}, "k1", Value::Inline("v1")).ok());
    ASSERT_TRUE(db->Put({}, "k2", Value::Inline("v2")).ok());
    Value v;
    ASSERT_TRUE(db->Get({}, "k1", &v).ok());
    EXPECT_EQ(v.Materialize(), "v1");
    EXPECT_TRUE(db->Get({}, "missing", &v).IsNotFound());
    ASSERT_TRUE(db->Delete({}, "k1").ok());
    EXPECT_TRUE(db->Get({}, "k1", &v).IsNotFound());
    ASSERT_TRUE(db->Get({}, "k2", &v).ok());
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, OverwriteReturnsLatest) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(
          db->Put({}, "key", Value::Inline("v" + std::to_string(i))).ok());
    }
    Value v;
    ASSERT_TRUE(db->Get({}, "key", &v).ok());
    EXPECT_EQ(v.Materialize(), "v9");
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, GetAfterFlushReadsSst) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Inline("v" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    EXPECT_GE(db->stats().flush_count, 1u);
    EXPECT_GT(db->TotalSstBytes(), 0u);
    Value v;
    for (int i = 0; i < 100; i += 7) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.Materialize(), "v" + std::to_string(i));
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, CompactionPreservesData) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    // Write enough synthetic 4 KB values to force several flushes and
    // L0->L1 compactions (write buffer is 256 KiB).
    const int n = 2000;
    Random64 rng(7);
    std::map<std::string, uint64_t> expected;
    for (int i = 0; i < n; i++) {
      uint64_t k = rng.Uniform(500);  // heavy overwrite
      std::string key = TestKey(k);
      uint64_t seed = static_cast<uint64_t>(i) << 20;
      ASSERT_TRUE(db->Put({}, key, Value::Synthetic(seed, 4096)).ok());
      expected[key] = seed;
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    EXPECT_GT(db->stats().compaction_count, 0u);

    for (const auto& [key, seed] : expected) {
      Value v;
      ASSERT_TRUE(db->Get({}, key, &v).ok()) << key;
      EXPECT_EQ(v.seed(), seed) << key;
      EXPECT_EQ(v.logical_size(), 4096u);
    }
    // Compaction should have dropped shadowed versions: total SST bytes on
    // the order of live data (500 * 4 KB = 2 MB), far below written (8 MB).
    EXPECT_LT(db->TotalSstBytes(), 5ull << 20);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, DeletesSurviveCompaction) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    for (int i = 0; i < 200; i += 2) {
      ASSERT_TRUE(db->Delete({}, TestKey(i)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    Value v;
    for (int i = 0; i < 200; i++) {
      Status s = db->Get({}, TestKey(i), &v);
      if (i % 2 == 0) {
        EXPECT_TRUE(s.IsNotFound()) << i;
      } else {
        EXPECT_TRUE(s.ok()) << i;
      }
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, IteratorSeesLiveKeysInOrder) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 2048)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    // Some keys deleted, some overwritten post-flush (live in memtable).
    for (int i = 0; i < 300; i += 3) ASSERT_TRUE(db->Delete({}, TestKey(i)).ok());
    for (int i = 1; i < 300; i += 3) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(1000 + i, 100)).ok());
    }

    auto it = db->NewIterator({});
    int count = 0;
    std::string prev;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string key = it->key().ToString();
      if (!prev.empty()) EXPECT_LT(prev, key);
      prev = key;
      count++;
      // Deleted keys must not appear.
      uint64_t n = strtoull(key.c_str() + 3, nullptr, 10);
      EXPECT_NE(n % 3, 0u) << key;
    }
    EXPECT_TRUE(it->status().ok());
    EXPECT_EQ(count, 200);

    // Seek semantics.
    it->Seek(TestKey(150) /* deleted (150 % 3 == 0) */);
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), TestKey(151));
    Value v = Value::DecodeOrDie(it->value());
    EXPECT_EQ(v.seed(), 1151u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, WalRecoveryAfterCrash) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      for (int i = 0; i < 50; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i), Value::Inline("v" + std::to_string(i)))
                        .ok());
      }
      // Force WAL to device (unsynced tail would be legitimately lost).
      ASSERT_TRUE(db->Put(WriteOptions{.sync = true}, TestKey(50),
                          Value::Inline("v50"))
                      .ok());
      // "Crash": close background threads without flushing the memtable.
      ASSERT_TRUE(db->Close().ok());
    }
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      Value v;
      for (int i = 0; i <= 50; i++) {
        ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
        EXPECT_EQ(v.Materialize(), "v" + std::to_string(i));
      }
      ASSERT_TRUE(db->Close().ok());
    }
  });
}

TEST(DbTest, RecoveryAfterFlushAndCompaction) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      for (int i = 0; i < 500; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i % 200), Value::Synthetic(i, 4096)).ok());
      }
      ASSERT_TRUE(db->FlushAll().ok());
      ASSERT_TRUE(db->WaitForCompactionIdle().ok());
      ASSERT_TRUE(db->Close().ok());
    }
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      Value v;
      // Last writer of key k was iteration i where i % 200 == k, i maximal.
      for (int k = 0; k < 200; k++) {
        ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
        uint64_t expect = (k < 100) ? (400 + k) : (200 + k);
        EXPECT_EQ(v.seed(), expect) << k;
      }
      ASSERT_TRUE(db->Close().ok());
    }
  });
}

TEST(DbTest, StallsOccurWithoutSlowdownUnderWritePressure) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    opts.enable_slowdown = false;
    opts.compaction_threads = 1;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(db->stats().stall_events, 0u);
    EXPECT_GT(db->stats().stall_regions.TotalDuration(), 0u);
    EXPECT_EQ(db->stats().slowdown_events, 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, SlowdownReplacesHardStalls) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    opts.enable_slowdown = true;
    opts.compaction_threads = 1;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_GT(db->stats().slowdown_events, 0u);
    // The delayed-write mechanism should absorb most pressure; hard stalls
    // may still occur but far less than slowdowns.
    EXPECT_LT(db->stats().stall_events, db->stats().slowdown_events);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, StallSignalsReflectState) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    StallSignals sig = db->GetStallSignals();
    EXPECT_EQ(sig.l0_files, 0);
    EXPECT_FALSE(sig.stalled);
    ASSERT_TRUE(db->Put({}, "k", Value::Synthetic(1, 4096)).ok());
    sig = db->GetStallSignals();
    EXPECT_GT(sig.active_memtable_bytes, 4000u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, DynamicTuningHooks) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = 1;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    EXPECT_EQ(db->compaction_threads(), 1);
    db->SetCompactionThreads(4);
    EXPECT_EQ(db->compaction_threads(), 4);
    db->SetWriteBufferSize(512 << 10);
    EXPECT_EQ(db->write_buffer_size(), 512u << 10);
    // Tuning up mid-load must not break anything.
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    Value v;
    ASSERT_TRUE(db->Get({}, TestKey(123), &v).ok());
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(DbTest, ConcurrentReadersAndWriter) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  std::unique_ptr<DB> db;
  int read_hits = 0;
  world.env.Spawn("writer", [&] {
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i % 100), Value::Synthetic(i, 4096)).ok());
    }
  });
  world.env.Spawn("reader", [&] {
    world.env.SleepFor(FromMillis(50));
    for (int i = 0; i < 200; i++) {
      if (db == nullptr) break;
      Value v;
      Status s = db->Get({}, TestKey(i % 100), &v);
      if (s.ok()) read_hits++;
      world.env.SleepFor(FromMicros(500));
    }
  });
  world.env.Spawn("closer", [&] {
    world.env.SleepFor(FromSecs(30));
    if (db != nullptr) ASSERT_TRUE(db->Close().ok());
  });
  world.env.Run();
  EXPECT_GT(read_hits, 0);
}

TEST(DbTest, PerSecondThroughputRecorded) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Inline("x")).ok());
    }
    EXPECT_EQ(db->stats().writes_total, 100u);
    EXPECT_NEAR(db->stats().writes_completed.total(), 100.0, 0.01);
    EXPECT_GT(db->stats().put_latency.Count(), 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel::lsm
