// Shard router invariants (DESIGN.md §11): key routing, cross-shard iterator
// order, per-shard crash recovery, fair-share arbiter behavior, and the
// determinism + fairness acceptance gates for the sharded engine.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/nemesis.h"
#include "core/sharded_kvaccel_db.h"
#include "harness/report_json.h"
#include "harness/workload.h"
#include "sim/arbiter.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::TestKey;

// Like test::SimWorld but with one SSD namespace per shard and no world-level
// file system (each shard's SimFs owns its namespace's LBA space).
struct ShardWorld {
  sim::SimEnv env;
  std::unique_ptr<ssd::HybridSsd> ssd;
  std::unique_ptr<sim::CpuPool> host_cpu;

  explicit ShardWorld(int shards) {
    ssd::SsdConfig c;
    c.capacity_bytes = 2ull << 30;
    c.num_namespaces = shards;
    ssd = std::make_unique<ssd::HybridSsd>(&env, c);
    host_cpu = std::make_unique<sim::CpuPool>(&env, "host", 8);
  }

  core::ShardEnv MakeShardEnv() {
    return core::ShardEnv{&env, ssd.get(), host_cpu.get()};
  }

  void Run(std::function<void()> body) {
    env.Spawn("test-main", std::move(body));
    env.Run();
  }
};

core::KvaccelOptions SmallKvOptions() {
  core::KvaccelOptions o;
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  o.rollback = core::RollbackScheme::kDisabled;
  return o;
}

Status OpenSharded(ShardWorld* world, int n, core::ShardPartition partition,
                   std::unique_ptr<core::ShardedKvaccelDB>* db) {
  core::ShardingOptions sharding;
  sharding.num_shards = n;
  sharding.partition = partition;
  return core::ShardedKvaccelDB::Open(test::SmallDbOptions(), SmallKvOptions(),
                                      sharding, world->MakeShardEnv(), db);
}

// Smallest 64-bit range point owned by shard i under the multiply-shift
// split: the first v with (v * n) >> 64 == i.
uint64_t ShardLowerBound(int i, int n) {
  unsigned __int128 num =
      (static_cast<unsigned __int128>(i) << 64) + static_cast<unsigned>(n) - 1;
  return static_cast<uint64_t>(num / static_cast<unsigned>(n));
}

// 8-byte big-endian key encoding exactly the range point v.
std::string RangeKey(uint64_t v) {
  std::string k(8, '\0');
  for (int b = 0; b < 8; b++) {
    k[b] = static_cast<char>((v >> (56 - 8 * b)) & 0xff);
  }
  return k;
}

// Every key routed through the hash partition lands in exactly one shard:
// readable from the shard ShardOf names, NotFound in every other shard.
TEST(ShardRoutingTest, HashKeyLandsInExactlyOneShard) {
  ShardWorld world(4);
  world.Run([&] {
    std::unique_ptr<core::ShardedKvaccelDB> db;
    ASSERT_TRUE(OpenSharded(&world, 4, core::ShardPartition::kHash, &db).ok());
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }
    bool all_shards_hit[4] = {false, false, false, false};
    for (int i = 0; i < 200; i++) {
      std::string key = TestKey(i);
      int owner = db->ShardOf(key);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, 4);
      all_shards_hit[owner] = true;
      for (int s = 0; s < 4; s++) {
        Value v;
        Status gs = db->shard(s)->Get({}, key, &v);
        if (s == owner) {
          ASSERT_TRUE(gs.ok()) << "key " << i << " missing from its shard";
          EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
        } else {
          EXPECT_TRUE(gs.IsNotFound())
              << "key " << i << " leaked into shard " << s;
        }
      }
    }
    for (int s = 0; s < 4; s++) {
      EXPECT_TRUE(all_shards_hit[s]) << "hash left shard " << s << " empty";
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// Range partition: ShardOf is monotone in key order, and the exact boundary
// keys of each slice belong to exactly one shard (the upper one).
TEST(ShardRoutingTest, RangeBoundaryKeysBelongToExactlyOneShard) {
  const int n = 4;
  ShardWorld world(n);
  world.Run([&] {
    std::unique_ptr<core::ShardedKvaccelDB> db;
    ASSERT_TRUE(
        OpenSharded(&world, n, core::ShardPartition::kRange, &db).ok());

    for (int i = 1; i < n; i++) {
      uint64_t lo = ShardLowerBound(i, n);
      EXPECT_EQ(db->ShardOf(RangeKey(lo)), i) << "boundary of shard " << i;
      EXPECT_EQ(db->ShardOf(RangeKey(lo - 1)), i - 1)
          << "predecessor of shard " << i << "'s boundary";
    }
    EXPECT_EQ(db->ShardOf(RangeKey(0)), 0);
    EXPECT_EQ(db->ShardOf(RangeKey(~0ull)), n - 1);

    // Physically store boundary±1 keys; each must be readable from its own
    // shard only.
    std::vector<std::string> keys;
    keys.push_back(RangeKey(0));
    for (int i = 1; i < n; i++) {
      uint64_t lo = ShardLowerBound(i, n);
      keys.push_back(RangeKey(lo - 1));
      keys.push_back(RangeKey(lo));
    }
    keys.push_back(RangeKey(~0ull));
    int prev_owner = 0;
    for (size_t k = 0; k < keys.size(); k++) {
      ASSERT_TRUE(db->Put({}, keys[k], Value::Synthetic(k, 256)).ok());
      int owner = db->ShardOf(keys[k]);
      EXPECT_GE(owner, prev_owner) << "range routing not monotone";
      prev_owner = owner;
      int holders = 0;
      for (int s = 0; s < n; s++) {
        Value v;
        if (db->shard(s)->Get({}, keys[k], &v).ok()) {
          holders++;
          EXPECT_EQ(s, owner);
        }
      }
      EXPECT_EQ(holders, 1) << "boundary key held by " << holders << " shards";
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// Cross-shard NewIterator: the K-way merge walks the union of all shards in
// strict global key order, with deletes honored — checked against a model
// map (hash partition, so adjacent keys interleave across shards).
TEST(ShardRoutingTest, CrossShardIteratorMatchesGlobalKeyOrder) {
  ShardWorld world(4);
  world.Run([&] {
    std::unique_ptr<core::ShardedKvaccelDB> db;
    ASSERT_TRUE(OpenSharded(&world, 4, core::ShardPartition::kHash, &db).ok());
    std::map<std::string, uint64_t> model;
    for (int i = 0; i < 300; i++) {
      std::string key = TestKey(i);
      ASSERT_TRUE(db->Put({}, key, Value::Synthetic(i, 512)).ok());
      model[key] = static_cast<uint64_t>(i);
    }
    for (int i = 0; i < 300; i += 7) {
      std::string key = TestKey(i);
      ASSERT_TRUE(db->Delete({}, key).ok());
      model.erase(key);
    }

    auto it = db->NewIterator({});
    it->SeekToFirst();
    auto mit = model.begin();
    while (mit != model.end()) {
      ASSERT_TRUE(it->Valid()) << "iterator ended before " << mit->first;
      EXPECT_EQ(it->key().ToString(), mit->first);
      EXPECT_EQ(Value::DecodeOrDie(it->value()).seed(), mit->second);
      it->Next();
      ++mit;
    }
    EXPECT_FALSE(it->Valid()) << "iterator has keys past the model";
    ASSERT_TRUE(it->status().ok());

    // Seek lands on the global lower bound regardless of owning shard.
    std::string mid = TestKey(151);
    it->Seek(mid);
    auto lb = model.lower_bound(mid);
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), lb->first);
    ASSERT_TRUE(db->Close().ok());
  });
}

// §VI-D recovery across the fleet: after sustained redirect pressure, losing
// every shard's volatile metadata and recovering drains every shard's device
// namespace and preserves every acked write.
TEST(ShardRecoveryTest, CrashMetadataAndRecoverRecoversEveryShard) {
  const int n = 4;
  ShardWorld world(n);
  world.Run([&] {
    // Aggressive Main-LSM shape so every shard sees stall pressure (and
    // therefore redirects) within a few thousand writes.
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.write_buffer_size = 64 << 10;
    main_opts.l0_compaction_trigger = 4;
    main_opts.l0_slowdown_writes_trigger = 4;
    main_opts.l0_stop_writes_trigger = 5;
    main_opts.compaction_threads = 1;
    core::KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    core::ShardingOptions sharding;
    sharding.num_shards = n;
    std::unique_ptr<core::ShardedKvaccelDB> db;
    ASSERT_TRUE(core::ShardedKvaccelDB::Open(main_opts, kv_opts, sharding,
                                             world.MakeShardEnv(), &db)
                    .ok());

    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i % 500),
                          Value::Synthetic(static_cast<uint64_t>(i), 4096))
                      .ok());
    }
    ASSERT_GT(db->AggregateKvStats().redirected_writes, 0u)
        << "pressure never redirected; recovery would be vacuous";

    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    Nanos recovery = 0;
    ASSERT_TRUE(db->CrashMetadataAndRecover(&recovery).ok());
    EXPECT_GT(recovery, 0);

    for (int s = 0; s < n; s++) {
      EXPECT_TRUE(db->shard(s)->dev()->Empty())
          << "shard " << s << " device not drained";
      EXPECT_EQ(db->shard(s)->metadata()->Size(), 0u)
          << "shard " << s << " metadata survived the crash";
    }
    // Every acked write readable at its newest version, wherever it lived.
    Value v;
    for (int k = 0; k < 500; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(3500 + k)) << k;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// SFQ fairness: a heavy client and a light client hammer one arbiter; the
// light client's total queueing must not exceed the heavy one's, and both
// are fully served at the configured rate.
TEST(FairShareArbiterTest, LightClientIsNotStarvedByHeavyClient) {
  sim::SimEnv env;
  sim::FairShareArbiter arb(&env, "test", /*bytes_per_sec=*/100.0 * 1e6,
                            /*burst_bytes=*/64 << 10);
  int heavy = -1;
  int light = -1;
  env.Spawn("setup", [&] {
    // Registration takes the sim mutex, so it runs as a simulated thread too.
    heavy = arb.RegisterClient("heavy");
    light = arb.RegisterClient("light");
    env.Spawn("heavy", [&] {
      for (int i = 0; i < 20; i++) arb.Acquire(heavy, 1 << 20);
    });
    env.Spawn("light", [&] {
      for (int i = 0; i < 20; i++) arb.Acquire(light, 64 << 10);
    });
  });
  env.Run();

  const auto& h = arb.client_stats(heavy);
  const auto& l = arb.client_stats(light);
  EXPECT_EQ(h.grants, 20u);
  EXPECT_EQ(h.granted_bytes, 20ull << 20);
  EXPECT_EQ(l.grants, 20u);
  EXPECT_EQ(l.granted_bytes, 20ull * (64 << 10));
  EXPECT_GT(h.throttles, 0u) << "heavy client never queued";
  EXPECT_LE(l.throttle_ns, h.throttle_ns)
      << "light client queued longer than the 16x heavier one";
}

TEST(FairShareArbiterTest, ZeroRateArbiterIsANoOp) {
  sim::SimEnv env;
  sim::FairShareArbiter arb(&env, "off", /*bytes_per_sec=*/0);
  int c = -1;
  env.Spawn("t", [&] {
    c = arb.RegisterClient("only");
    Nanos start = env.Now();
    EXPECT_EQ(arb.Acquire(c, 1 << 30), 0);
    EXPECT_EQ(env.Now(), start);
  });
  env.Run();
  EXPECT_EQ(arb.client_stats(c).grants, 0u);
}

// Acceptance gate: two identical-seed shards=4 bench runs produce
// byte-identical kvaccel-run-v1 reports, with per-shard rollups populated
// and the fairness ratio within the 2x gate on a uniform workload.
TEST(ShardedBenchTest, SameSeedRunsProduceByteIdenticalReports) {
  harness::BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = harness::SystemKind::kKvaccel;
  c.sut.shards = 4;
  c.workload.type = harness::WorkloadConfig::Type::kFillRandom;
  c.workload.duration = FromSecs(3);
  c.workload.writer_threads = 4;
  c.workload.batch_size = 4;

  harness::RunResult r1 = harness::RunBenchmark(c);
  harness::RunResult r2 = harness::RunBenchmark(c);
  ASSERT_EQ(r1.shards.size(), 4u);
  for (const harness::ShardSummary& s : r1.shards) {
    EXPECT_GT(s.writes, 0u) << "shard " << s.shard << " saw no writes";
  }
  EXPECT_GE(r1.shard_fairness_ratio, 1.0);
  EXPECT_LE(r1.shard_fairness_ratio, 2.0)
      << "uniform fillrandom should spread within the 2x fairness gate";

  std::string report1 = harness::JsonReportString(c, {r1});
  std::string report2 = harness::JsonReportString(c, {r2});
  EXPECT_EQ(report1, report2);
  EXPECT_NE(report1.find("\"shards\""), std::string::npos);
  EXPECT_NE(report1.find("\"shard_fairness_ratio\""), std::string::npos);
}

// Sharded nemesis: crash-recovery cycles against the router (dual kill
// sites, per-shard rollback draws) keep matching the model oracle.
TEST(ShardedNemesisTest, CrashCyclesMatchOracleAcrossShards) {
  check::NemesisOptions opts;
  opts.seed = 0xC0FFEE;
  opts.cycles = 6;
  opts.ops_per_cycle = 120;
  opts.shards = 3;
  check::NemesisResult r = check::RunNemesis(opts);
  EXPECT_TRUE(r.ok) << r.error << "\n" << r.trace;
  EXPECT_EQ(r.cycles_run, 6);
  EXPECT_NE(r.trace.find("shards=3"), std::string::npos);
}

// Satellite: DeregisterClient releases a slot on shard/node close and the
// next registration reuses it with a clean start tag and fresh stats, so a
// departed client can't distort fairness for its successor.
TEST(FairShareArbiterTest, DeregisterRecyclesSlotWithFreshState) {
  sim::SimEnv env;
  sim::FairShareArbiter arb(&env, "dev-bw", /*bytes_per_sec=*/100e6);
  // The arbiter's mutex is a SimMutex, so every call runs on a sim thread
  // (exactly how ShardedKvaccelDB registers/deregisters its shards).
  env.Spawn("test-main", [&] {
    int a = arb.RegisterClient("shard-a");
    int b = arb.RegisterClient("shard-b");
    ASSERT_EQ(a, 0);
    ASSERT_EQ(b, 1);
    for (int i = 0; i < 4; i++) arb.Acquire(a, 4 << 20);
    EXPECT_EQ(arb.client_stats(a).grants, 4u);
    EXPECT_GT(arb.client_stats(a).granted_bytes, 0u);

    arb.DeregisterClient(a);
    arb.DeregisterClient(a);  // double-release is a no-op
    int c = arb.RegisterClient("promoted-node");
    EXPECT_EQ(c, a) << "freed slot must be recycled";
    EXPECT_EQ(arb.client_stats(c).name, "promoted-node");
    EXPECT_EQ(arb.client_stats(c).grants, 0u) << "stats must reset on reuse";
    EXPECT_EQ(arb.client_stats(c).granted_bytes, 0u);
    // With the free list drained, registration grows a brand-new slot.
    EXPECT_EQ(arb.RegisterClient("shard-d"), 2);
    // Slot b was untouched throughout.
    EXPECT_EQ(arb.client_stats(b).name, "shard-b");
  });
  env.Run();
}

}  // namespace
}  // namespace kvaccel
