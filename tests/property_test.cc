// Property-based sweeps (parameterized gtest): each suite checks an
// invariant across a grid of configurations, with randomized-but-seeded
// operation streams.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "devlsm/dev_lsm.h"
#include "lsm/db.h"
#include "lsm/skiplist.h"
#include "ssd/ftl.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using lsm::DB;
using lsm::DbOptions;
using test::SimWorld;
using test::TestKey;

// ---------- DB vs std::map model check ----------
// Grid: (value_size, compaction_threads, slowdown on/off)
using DbModelParam = std::tuple<int, int, bool>;

class DbModelCheck : public ::testing::TestWithParam<DbModelParam> {};

TEST_P(DbModelCheck, RandomOpsMatchReferenceModel) {
  auto [value_size, threads, slowdown] = GetParam();
  SimWorld world;
  world.Run([&, value_size = value_size, threads = threads,
             slowdown = slowdown] {
    DbOptions opts = test::SmallDbOptions();
    opts.compaction_threads = threads;
    opts.enable_slowdown = slowdown;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());

    std::map<std::string, uint64_t> model;  // key -> seed (absent = deleted)
    Random64 rng(1000 + value_size + threads * 7 + (slowdown ? 1 : 0));
    uint64_t seed_counter = 1;
    const uint64_t kKeys = 300;

    for (int op = 0; op < 2500; op++) {
      std::string key = TestKey(rng.Uniform(kKeys));
      uint64_t dice = rng.Uniform(10);
      if (dice < 7) {  // put
        uint64_t seed = seed_counter++;
        ASSERT_TRUE(db->Put({}, key,
                            Value::Synthetic(seed, value_size)).ok());
        model[key] = seed;
      } else if (dice < 9) {  // delete
        ASSERT_TRUE(db->Delete({}, key).ok());
        model.erase(key);
      } else {  // point read, checked against the model
        Value v;
        Status s = db->Get({}, key, &v);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_TRUE(s.IsNotFound()) << key << " op " << op;
        } else {
          ASSERT_TRUE(s.ok()) << key << " op " << op;
          EXPECT_EQ(v.seed(), it->second) << key << " op " << op;
        }
      }
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());

    // Full-scan equivalence: the iterator shows exactly the model's state.
    auto it = db->NewIterator({});
    auto mit = model.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
      ASSERT_NE(mit, model.end());
      EXPECT_EQ(it->key().ToString(), mit->first);
      EXPECT_EQ(Value::DecodeOrDie(it->value()).seed(), mit->second);
    }
    EXPECT_EQ(mit, model.end());
    ASSERT_TRUE(db->Close().ok());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DbModelCheck,
    ::testing::Combine(::testing::Values(16, 1024, 4096),
                       ::testing::Values(1, 4),
                       ::testing::Values(false, true)));

// ---------- FTL invariants under random traffic ----------
using FtlParam = std::tuple<int, double>;  // pages_per_block, overprovision

class FtlProperty : public ::testing::TestWithParam<FtlParam> {};

TEST_P(FtlProperty, InvariantsHoldUnderRandomWriteTrim) {
  auto [ppb, op] = GetParam();
  ssd::Ftl::Options options;
  options.logical_pages = 2048;
  options.pages_per_block = ppb;
  options.overprovision = op;
  ssd::Ftl ftl(options, nullptr);

  Random64 rng(42 + ppb);
  std::set<uint64_t> mapped;
  for (int i = 0; i < 4000; i++) {
    uint64_t lpn = rng.Uniform(options.logical_pages - 8);
    uint64_t count = 1 + rng.Uniform(8);
    if (rng.OneIn(4)) {
      ASSERT_TRUE(ftl.Trim(lpn, count).ok());
      for (uint64_t p = lpn; p < lpn + count; p++) mapped.erase(p);
    } else {
      ASSERT_TRUE(ftl.Write(lpn, count).ok());
      for (uint64_t p = lpn; p < lpn + count; p++) mapped.insert(p);
    }
    ASSERT_EQ(ftl.valid_pages(), mapped.size()) << "op " << i;
  }
  for (uint64_t p = 0; p < options.logical_pages; p++) {
    EXPECT_EQ(ftl.IsMapped(p), mapped.count(p) > 0) << p;
  }
  EXPECT_GE(ftl.write_amplification(), 1.0);
  // GC must have run under this churn unless overprovisioning is huge.
  if (op < 0.3) EXPECT_GT(ftl.gc_runs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FtlProperty,
    ::testing::Combine(::testing::Values(8, 32, 128),
                       ::testing::Values(0.07, 0.25)));

// ---------- SkipList vs std::set ----------
class SkipListProperty : public ::testing::TestWithParam<uint64_t> {};

struct U64Cmp {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST_P(SkipListProperty, MatchesStdSet) {
  Arena arena;
  lsm::SkipList<uint64_t, U64Cmp> list(U64Cmp(), &arena);
  std::set<uint64_t> model;
  Random64 rng(GetParam());
  for (int i = 0; i < 3000; i++) {
    uint64_t k = rng.Uniform(10000);
    if (model.insert(k).second) list.Insert(k);
  }
  // Containment.
  for (int i = 0; i < 1000; i++) {
    uint64_t k = rng.Uniform(10000);
    EXPECT_EQ(list.Contains(k), model.count(k) > 0);
  }
  // Seek == lower_bound.
  for (int i = 0; i < 500; i++) {
    uint64_t k = rng.Uniform(10000);
    lsm::SkipList<uint64_t, U64Cmp>::Iterator it(&list);
    it.Seek(k);
    auto mit = model.lower_bound(k);
    if (mit == model.end()) {
      EXPECT_FALSE(it.Valid());
    } else {
      ASSERT_TRUE(it.Valid());
      EXPECT_EQ(it.key(), *mit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListProperty,
                         ::testing::Values(1, 7, 1234, 999983));

// ---------- Simulation determinism ----------
class SimDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimDeterminism, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [seed = GetParam()] {
    sim::SimEnv env;
    sim::CpuPool cpu(&env, "cpu", 2);
    sim::RateResource link(&env, "link", MBps(100));
    sim::SimMutex mu;
    std::vector<std::pair<int, Nanos>> trace;
    for (int t = 0; t < 4; t++) {
      env.Spawn("actor" + std::to_string(t), [&, t] {
        Random64 rng(seed * 17 + t);
        for (int i = 0; i < 50; i++) {
          switch (rng.Uniform(3)) {
            case 0:
              cpu.Consume(static_cast<double>(1000 + rng.Uniform(50000)));
              break;
            case 1:
              link.Transfer(512 + rng.Uniform(65536));
              break;
            case 2: {
              sim::SimLockGuard g(mu);
              env.SleepFor(rng.Uniform(20000));
              break;
            }
          }
          trace.emplace_back(t, env.Now());
        }
      });
    }
    env.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism, ::testing::Values(3, 11, 29));

// ---------- Histogram percentile monotonicity ----------
class HistogramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramProperty, PercentilesMonotoneAndBounded) {
  Histogram h;
  Random64 rng(GetParam());
  for (int i = 0; i < 5000; i++) h.Add(rng.Skewed(30));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_LE(v, static_cast<double>(h.Max()) + 1) << "p=" << p;
    prev = v;
  }
  EXPECT_GE(h.Percentile(1), static_cast<double>(h.Min()) * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(5, 77, 424242));

// ---------- Dev-LSM snapshot-bounded reset ----------
TEST(DevLsmResetUpToTest, SurvivorsOutliveBoundedReset) {
  SimWorld world;
  world.Run([&] {
    devlsm::DevLsmOptions opts;
    opts.memtable_bytes = 64 << 10;  // force flushes into runs
    devlsm::DevLsm dev(world.ssd.get(), 0, opts);
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(
          dev.Put(TestKey(i), Value::Synthetic(i, 4096), 100 + i).ok());
    }
    uint64_t snapshot = dev.LastSeq();
    // Writes after the snapshot must survive the bounded reset.
    for (int i = 50; i < 60; i++) {
      ASSERT_TRUE(
          dev.Put(TestKey(i), Value::Synthetic(i, 4096), 100 + i).ok());
    }
    ASSERT_TRUE(dev.ResetUpTo(snapshot).ok());
    Value v;
    for (int i = 0; i < 50; i++) {
      EXPECT_TRUE(dev.Get(TestKey(i), &v).IsNotFound()) << i;
    }
    for (int i = 50; i < 60; i++) {
      ASSERT_TRUE(dev.Get(TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    // Full reset clears the survivors too.
    ASSERT_TRUE(dev.Reset().ok());
    EXPECT_TRUE(dev.Empty());
  });
}

TEST(DevLsmResetUpToTest, OverwrittenSurvivorKeepsNewestOnly) {
  SimWorld world;
  world.Run([&] {
    devlsm::DevLsmOptions opts;
    opts.memtable_bytes = 32 << 10;
    devlsm::DevLsm dev(world.ssd.get(), 0, opts);
    ASSERT_TRUE(dev.Put("k", Value::Synthetic(1, 4096), 10).ok());
    uint64_t snapshot = dev.LastSeq();
    ASSERT_TRUE(dev.Put("k", Value::Synthetic(2, 4096), 20).ok());
    ASSERT_TRUE(dev.ResetUpTo(snapshot).ok());
    Value v;
    ASSERT_TRUE(dev.Get("k", &v).ok());
    EXPECT_EQ(v.seed(), 2u);
  });
}

}  // namespace
}  // namespace kvaccel
