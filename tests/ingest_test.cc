#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "lsm/db.h"
#include "tests/test_util.h"

namespace kvaccel::lsm {
namespace {

using test::SimWorld;
using test::TestKey;

TEST(IngestTest, BatchVisibleAfterIngestion) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    std::vector<IngestEntry> batch;
    for (int i = 0; i < 100; i++) {
      batch.push_back({TestKey(i), Value::Synthetic(i, 512), false,
                       db->AllocateSequence(1)});
    }
    ASSERT_TRUE(db->IngestSortedBatch(batch).ok());
    Value v;
    for (int i = 0; i < 100; i += 9) {
      ASSERT_TRUE(db->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(IngestTest, SequenceOrderingAgainstLiveWrites) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    // Old version written normally, newer version ingested, then an even
    // newer normal write: the global sequence order must decide.
    ASSERT_TRUE(db->Put({}, "k", Value::Inline("v1")).ok());
    SequenceNumber ingest_seq = db->AllocateSequence(1);
    ASSERT_TRUE(db->Put({}, "k2", Value::Inline("x")).ok());  // later seq
    std::vector<IngestEntry> batch{{"k", Value::Inline("v2"), false,
                                    ingest_seq}};
    ASSERT_TRUE(db->IngestSortedBatch(batch).ok());
    Value v;
    ASSERT_TRUE(db->Get({}, "k", &v).ok());
    EXPECT_EQ(v.Materialize(), "v2");  // ingested seq > v1's seq
    // A normal write after ingestion wins over the ingested version.
    ASSERT_TRUE(db->Put({}, "k", Value::Inline("v3")).ok());
    ASSERT_TRUE(db->Get({}, "k", &v).ok());
    EXPECT_EQ(v.Materialize(), "v3");
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(IngestTest, StaleIngestDoesNotClobberNewerData) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    SequenceNumber old_seq = db->AllocateSequence(1);
    ASSERT_TRUE(db->Put({}, "k", Value::Inline("new")).ok());
    std::vector<IngestEntry> batch{{"k", Value::Inline("old"), false,
                                    old_seq}};
    ASSERT_TRUE(db->IngestSortedBatch(batch).ok());
    Value v;
    ASSERT_TRUE(db->Get({}, "k", &v).ok());
    EXPECT_EQ(v.Materialize(), "new");  // ingested version is older
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(IngestTest, TombstonesIngest) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    ASSERT_TRUE(db->Put({}, TestKey(1), Value::Inline("x")).ok());
    ASSERT_TRUE(db->Put({}, TestKey(2), Value::Inline("y")).ok());
    std::vector<IngestEntry> batch{
        {TestKey(1), Value(), true, db->AllocateSequence(1)}};
    ASSERT_TRUE(db->IngestSortedBatch(batch).ok());
    Value v;
    EXPECT_TRUE(db->Get({}, TestKey(1), &v).IsNotFound());
    EXPECT_TRUE(db->Get({}, TestKey(2), &v).ok());
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(IngestTest, RejectsUnsortedBatch) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    std::vector<IngestEntry> batch{
        {"b", Value::Inline("1"), false, db->AllocateSequence(1)},
        {"a", Value::Inline("2"), false, db->AllocateSequence(1)}};
    EXPECT_TRUE(db->IngestSortedBatch(batch).IsInvalidArgument());
    std::vector<IngestEntry> dup{
        {"a", Value::Inline("1"), false, db->AllocateSequence(1)},
        {"a", Value::Inline("2"), false, db->AllocateSequence(1)}};
    EXPECT_TRUE(db->IngestSortedBatch(dup).IsInvalidArgument());
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(IngestTest, EmptyBatchIsNoop) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    EXPECT_TRUE(db->IngestSortedBatch({}).ok());
    ASSERT_TRUE(db->Close().ok());
  });
}

// Regression test for a sequence-inversion read bug caught by the nemesis
// harness (seed 1317456661): rollback ingests device pairs at historical
// sequences, so an ingested file can hold a NEWER version of a key than a
// WAL-replayed memtable entry. Once compaction carries that file below L0,
// a level-ordered point lookup that stops at its first hit returns the
// stale version — first from the memtable, and after a flush from a
// newer-numbered L0 file with a LOWER sequence. Get must always surface the
// highest sequence regardless of which level holds it.
TEST(IngestTest, NewerIngestShadowsStaleVersionAcrossLevels) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db).ok());
    // Stale version sits in the memtable; nothing below flushes it.
    ASSERT_TRUE(db->Put({}, "k", Value::Inline("stale")).ok());
    std::vector<IngestEntry> batch{
        {"k", Value::Inline("fresh"), false, db->AllocateSequence(1)}};
    ASSERT_TRUE(db->IngestSortedBatch(batch).ok());

    auto covering_level = [&]() {
      int level = -1;
      for (const auto& f : db->ListSstFiles()) {
        if (Slice("k").compare(ExtractUserKey(f.smallest)) >= 0 &&
            Slice("k").compare(ExtractUserKey(f.largest)) <= 0) {
          level = std::max(level, f.level);
        }
      }
      return level;
    };

    // Sibling ingests (disjoint keys) push L0 past its compaction trigger
    // until the file carrying "fresh" has been compacted below L0.
    int next = 1000;
    for (int round = 0; round < 20 && covering_level() < 1; round++) {
      std::vector<IngestEntry> filler;
      for (int i = 0; i < 32; i++, next++) {
        filler.push_back({TestKey(next), Value::Synthetic(next, 4096), false,
                          db->AllocateSequence(1)});
      }
      ASSERT_TRUE(db->IngestSortedBatch(filler).ok());
      ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    }
    ASSERT_GE(covering_level(), 1);

    // Memtable "stale" vs L1+ "fresh": the ingested sequence must win.
    Value v;
    ASSERT_TRUE(db->Get({}, "k", &v).ok());
    EXPECT_EQ(v.Materialize(), "fresh");

    // Flush the stale version into a brand-new L0 file: lower sequence in a
    // newer file above "fresh" in the tree. The ingested version still wins.
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->Get({}, "k", &v).ok());
    EXPECT_EQ(v.Materialize(), "fresh");

    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(IngestTest, IngestedDataSurvivesCompactionAndRestart) {
  SimWorld world;
  world.Run([&] {
    DbOptions opts = test::SmallDbOptions();
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      std::vector<IngestEntry> batch;
      for (int i = 0; i < 200; i++) {
        batch.push_back({TestKey(i), Value::Synthetic(i, 4096), false,
                         db->AllocateSequence(1)});
      }
      ASSERT_TRUE(db->IngestSortedBatch(batch).ok());
      // More churn to force compaction over the ingested file.
      for (int i = 0; i < 500; i++) {
        ASSERT_TRUE(db->Put({}, TestKey(i % 200),
                            Value::Synthetic(1000 + i, 4096)).ok());
      }
      ASSERT_TRUE(db->FlushAll().ok());
      ASSERT_TRUE(db->WaitForCompactionIdle().ok());
      ASSERT_TRUE(db->Close().ok());
    }
    {
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, world.MakeDbEnv(), &db).ok());
      Value v;
      // Last churn write of key k (k in 150..199) was i = 300 + k,
      // seed 1000 + i.
      for (int k = 150; k < 200; k++) {
        ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
        EXPECT_EQ(v.seed(), static_cast<uint64_t>(1300 + k - 100)) << k;
      }
      ASSERT_TRUE(db->Close().ok());
    }
  });
}

}  // namespace
}  // namespace kvaccel::lsm
