#include <gtest/gtest.h>

#include "sim/sim_env.h"
#include "ssd/config.h"
#include "ssd/ftl.h"
#include "ssd/hybrid_ssd.h"
#include "ssd/nand_flash.h"
#include "ssd/nvme.h"

namespace kvaccel::ssd {
namespace {

SsdConfig SmallConfig() {
  SsdConfig c;
  c.capacity_bytes = 64ull << 20;  // 64 MiB
  c.pages_per_block = 16;
  return c;
}

TEST(NandFlashTest, SingleStreamReachesAggregateBandwidth) {
  sim::SimEnv env;
  SsdConfig c = SmallConfig();
  NandFlash nand(&env, c);
  Nanos done = 0;
  env.Spawn("w", [&] { done = nand.Write(63'000'000); });  // 63 MB
  env.Run();
  // 63 MB at 630 MB/s = 100 ms (+ fixed program latency).
  EXPECT_NEAR(ToSecs(done), 0.1, 0.002);
  EXPECT_EQ(nand.bytes_written(), 63'000'000u);
}

TEST(NandFlashTest, ConcurrentStreamsShareBandwidth) {
  sim::SimEnv env;
  NandFlash nand(&env, SmallConfig());
  Nanos d1 = 0, d2 = 0;
  env.Spawn("a", [&] { d1 = nand.Write(31'500'000); });
  env.Spawn("b", [&] { d2 = nand.Write(31'500'000); });
  env.Run();
  // Both share the 630 MB/s: 63 MB total takes ~100 ms.
  EXPECT_NEAR(ToSecs(std::max(d1, d2)), 0.1, 0.005);
}

TEST(NandFlashTest, ReadLatencyApplied) {
  sim::SimEnv env;
  SsdConfig c = SmallConfig();
  NandFlash nand(&env, c);
  Nanos done = 0;
  env.Spawn("r", [&] { done = nand.Read(4096); });
  env.Run();
  // One page: transfer (~26 us at 157.5 MB/s/channel) + 45 us access.
  EXPECT_GT(done, FromMicros(45));
  EXPECT_LT(done, FromMicros(120));
}

TEST(FtlTest, WriteMapsAndOverwriteInvalidates) {
  Ftl::Options opt;
  opt.logical_pages = 1024;
  opt.pages_per_block = 16;
  Ftl ftl(opt, nullptr);
  EXPECT_FALSE(ftl.IsMapped(5));
  ASSERT_TRUE(ftl.Write(0, 64).ok());
  EXPECT_TRUE(ftl.IsMapped(5));
  EXPECT_EQ(ftl.valid_pages(), 64u);
  ASSERT_TRUE(ftl.Write(0, 64).ok());  // overwrite
  EXPECT_EQ(ftl.valid_pages(), 64u);   // still 64 valid
  EXPECT_DOUBLE_EQ(ftl.write_amplification(), 1.0);  // no GC yet
}

TEST(FtlTest, TrimUnmaps) {
  Ftl::Options opt;
  opt.logical_pages = 256;
  opt.pages_per_block = 16;
  Ftl ftl(opt, nullptr);
  ASSERT_TRUE(ftl.Write(10, 20).ok());
  ASSERT_TRUE(ftl.Trim(10, 10).ok());
  EXPECT_FALSE(ftl.IsMapped(10));
  EXPECT_TRUE(ftl.IsMapped(25));
  EXPECT_EQ(ftl.valid_pages(), 10u);
  // Trimming unmapped pages is harmless.
  ASSERT_TRUE(ftl.Trim(0, 256).ok());
  EXPECT_EQ(ftl.valid_pages(), 0u);
}

TEST(FtlTest, OutOfRangeRejected) {
  Ftl::Options opt;
  opt.logical_pages = 64;
  opt.pages_per_block = 16;
  Ftl ftl(opt, nullptr);
  EXPECT_TRUE(ftl.Write(60, 10).IsInvalidArgument());
  EXPECT_TRUE(ftl.Trim(64, 1).IsInvalidArgument());
}

TEST(FtlTest, GcReclaimsOverwrittenSpace) {
  Ftl::Options opt;
  opt.logical_pages = 256;
  opt.pages_per_block = 16;
  opt.overprovision = 0.10;
  uint64_t gc_pages = 0, gc_blocks = 0;
  Ftl ftl(opt, [&](uint64_t p, uint64_t b) {
    gc_pages += p;
    gc_blocks += b;
  });
  // Overwrite the same range many times: physical blocks fill with invalid
  // pages; GC must keep reclaiming them indefinitely.
  for (int round = 0; round < 50; round++) {
    ASSERT_TRUE(ftl.Write(0, 128).ok()) << "round " << round;
  }
  EXPECT_EQ(ftl.valid_pages(), 128u);
  EXPECT_GT(ftl.gc_runs(), 0u);
  EXPECT_GT(ftl.erased_blocks(), 0u);
  EXPECT_EQ(gc_blocks, ftl.erased_blocks());
  EXPECT_GE(ftl.write_amplification(), 1.0);
}

TEST(FtlTest, FullDeviceReportsNoSpace) {
  Ftl::Options opt;
  opt.logical_pages = 64;
  opt.pages_per_block = 16;
  opt.overprovision = 0.0;  // nothing spare
  Ftl ftl(opt, nullptr);
  // Fill every logical page: valid data occupies all physical blocks, GC has
  // nothing reclaimable, further writes must eventually fail.
  Status s = ftl.Write(0, 64);
  ASSERT_TRUE(s.ok());
  s = ftl.Write(0, 64);  // rewrite needs headroom that 0% OP can't provide
  EXPECT_TRUE(s.IsNoSpace() || s.ok());
}

TEST(HybridSsdTest, BlockIoMovesPcieAndNandTraffic) {
  sim::SimEnv env;
  HybridSsd ssd(&env, SmallConfig());
  env.Spawn("w", [&] {
    ASSERT_TRUE(ssd.BlockWrite(0, 0, 256).ok());  // 1 MiB
    ASSERT_TRUE(ssd.BlockRead(0, 0, 256).ok());
  });
  env.Run();
  EXPECT_EQ(ssd.pcie().total_bytes(), 2u << 20);
  EXPECT_EQ(ssd.nand().bytes_written(), 1u << 20);
  EXPECT_EQ(ssd.nand().bytes_read(), 1u << 20);
}

TEST(HybridSsdTest, DisaggregationSplitsCapacity) {
  sim::SimEnv env;
  SsdConfig c = SmallConfig();
  c.block_region_fraction = 0.75;
  HybridSsd ssd(&env, c);
  uint64_t total = c.total_pages();
  EXPECT_EQ(ssd.BlockCapacitySectors(0), total * 3 / 4);
  EXPECT_EQ(ssd.KvCapacityPages(0), total - total * 3 / 4);
}

TEST(HybridSsdTest, KvQuotaEnforced) {
  sim::SimEnv env;
  HybridSsd ssd(&env, SmallConfig());
  uint64_t quota = ssd.KvCapacityPages(0);
  EXPECT_TRUE(ssd.KvAllocPages(0, quota).ok());
  EXPECT_TRUE(ssd.KvAllocPages(0, 1).IsNoSpace());
  ssd.KvFreePages(0, quota / 2);
  EXPECT_EQ(ssd.KvUsedPages(0), quota - quota / 2);
  EXPECT_TRUE(ssd.KvAllocPages(0, 1).ok());
}

TEST(HybridSsdTest, NamespacesAreIsolated) {
  sim::SimEnv env;
  SsdConfig c = SmallConfig();
  c.num_namespaces = 2;
  HybridSsd ssd(&env, c);
  EXPECT_EQ(ssd.BlockCapacitySectors(0), ssd.BlockCapacitySectors(1));
  // Fill namespace 0's KV quota; namespace 1 is unaffected.
  ASSERT_TRUE(ssd.KvAllocPages(0, ssd.KvCapacityPages(0)).ok());
  EXPECT_TRUE(ssd.KvAllocPages(0, 1).IsNoSpace());
  EXPECT_TRUE(ssd.KvAllocPages(1, 1).ok());
  EXPECT_TRUE(ssd.BlockWrite(2, 0, 1).IsInvalidArgument());
}

TEST(HybridSsdTest, CommandTraceRecords) {
  sim::SimEnv env;
  HybridSsd ssd(&env, SmallConfig());
  env.Spawn("w", [&] {
    ssd.BlockWrite(0, 0, 4);
    ssd.BlockRead(0, 0, 4);
    ssd.BlockFlush(0);
  });
  env.Run();
  EXPECT_EQ(ssd.trace().CountOf(nvme::Opcode::kWrite), 1u);
  EXPECT_EQ(ssd.trace().CountOf(nvme::Opcode::kRead), 1u);
  EXPECT_EQ(ssd.trace().CountOf(nvme::Opcode::kFlush), 1u);
  EXPECT_EQ(ssd.trace().total_count(), 3u);
}

TEST(HybridSsdTest, FirmwareIsSlowerThanHost) {
  sim::SimEnv env;
  SsdConfig c = SmallConfig();
  HybridSsd ssd(&env, c);
  Nanos done = 0;
  env.Spawn("fw", [&] {
    ssd.firmware()->Consume(1e6);  // 1 ms of nominal work
    done = env.Now();
  });
  env.Run();
  EXPECT_NEAR(static_cast<double>(done), 1e6 / c.firmware_speed, 1e3);
}

TEST(NvmeTest, OpcodeNames) {
  EXPECT_STREQ(nvme::OpcodeName(nvme::Opcode::kKvStore), "KV_STORE");
  EXPECT_STREQ(nvme::OpcodeName(nvme::Opcode::kKvBulkScan), "KV_BULK_SCAN");
  EXPECT_STREQ(nvme::OpcodeName(nvme::Opcode::kRead), "READ");
}

}  // namespace
}  // namespace kvaccel::ssd
