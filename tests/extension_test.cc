// Tests for the engineering extensions beyond the paper's letter:
// device read cache, compound KV commands, multi-device deployment,
// and decode robustness (fuzz-style) for the on-disk formats.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/kvaccel_db.h"
#include "devlsm/dev_lsm.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "lsm/write_batch.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::SimWorld;
using test::TestKey;

TEST(DevReadCacheTest, HitsSkipNandReads) {
  SimWorld world;
  world.Run([&] {
    devlsm::DevLsmOptions opts;
    opts.memtable_bytes = 64 << 10;
    opts.read_cache_bytes = 8 << 20;
    devlsm::DevLsm dev(world.ssd.get(), 0, opts);
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    // First pass: cold cache.
    auto it = dev.NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
    }
    uint64_t nand_cold = world.ssd->nand().bytes_read();
    uint64_t misses = dev.stats().read_cache_misses;
    EXPECT_GT(misses, 0u);
    // Second pass: warm cache, no new NAND reads.
    auto it2 = dev.NewIterator();
    for (it2->SeekToFirst(); it2->Valid(); it2->Next()) {
    }
    EXPECT_EQ(world.ssd->nand().bytes_read(), nand_cold);
    EXPECT_GT(dev.stats().read_cache_hits, 0u);
  });
}

TEST(DevReadCacheTest, MutationInvalidatesCache) {
  SimWorld world;
  world.Run([&] {
    devlsm::DevLsmOptions opts;
    opts.memtable_bytes = 1 << 20;
    opts.read_cache_bytes = 8 << 20;
    devlsm::DevLsm dev(world.ssd.get(), 0, opts);
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    auto it = dev.NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
    }
    uint64_t hits_before = dev.stats().read_cache_hits;
    // A write invalidates the firmware cache: next scan misses again.
    ASSERT_TRUE(dev.Put("zzz", Value::Inline("fresh")).ok());
    auto it2 = dev.NewIterator();
    it2->SeekToFirst();
    EXPECT_EQ(dev.stats().read_cache_hits, hits_before);
    EXPECT_GT(dev.stats().read_cache_misses, 0u);
  });
}

TEST(DevReadCacheTest, DisabledByDefault) {
  SimWorld world;
  world.Run([&] {
    devlsm::DevLsmOptions opts;  // read_cache_bytes = 0: paper configuration
    devlsm::DevLsm dev(world.ssd.get(), 0, opts);
    ASSERT_TRUE(dev.Put("k", Value::Inline("v")).ok());
    auto it = dev.NewIterator();
    it->SeekToFirst();
    it->SeekToFirst();
    EXPECT_EQ(dev.stats().read_cache_hits, 0u);
  });
}

TEST(CompoundCommandTest, BatchedPutsApplyAtomically) {
  SimWorld world;
  world.Run([&] {
    devlsm::DevLsmOptions opts;
    devlsm::DevLsm dev(world.ssd.get(), 0, opts);
    std::vector<devlsm::DevLsm::BatchPut> batch;
    for (int i = 0; i < 64; i++) {
      batch.push_back({TestKey(i), Value::Synthetic(i, 4096),
                       static_cast<uint64_t>(100 + i)});
    }
    ASSERT_TRUE(dev.PutCompound(batch).ok());
    EXPECT_EQ(dev.stats().puts, 64u);
    EXPECT_EQ(world.ssd->trace().CountOf(ssd::nvme::Opcode::kKvCompound), 1u);
    EXPECT_EQ(world.ssd->trace().CountOf(ssd::nvme::Opcode::kKvStore), 0u);
    Value v;
    for (int i = 0; i < 64; i += 7) {
      ASSERT_TRUE(dev.Get(TestKey(i), &v).ok());
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(i));
    }
  });
}

TEST(CompoundCommandTest, CompoundIsCheaperThanSingles) {
  SimWorld world;
  Nanos singles = 0, compound = 0;
  world.Run([&] {
    {
      devlsm::DevLsm dev(world.ssd.get(), 0, {});
      Nanos t0 = world.env.Now();
      for (int i = 0; i < 32; i++) {
        ASSERT_TRUE(dev.Put(TestKey(i), Value::Synthetic(i, 4096)).ok());
      }
      singles = world.env.Now() - t0;
    }
    {
      devlsm::DevLsm dev(world.ssd.get(), 0, {});
      std::vector<devlsm::DevLsm::BatchPut> batch;
      for (int i = 0; i < 32; i++) {
        batch.push_back({TestKey(i), Value::Synthetic(i, 4096), 0});
      }
      Nanos t0 = world.env.Now();
      ASSERT_TRUE(dev.PutCompound(batch).ok());
      compound = world.env.Now() - t0;
    }
  });
  EXPECT_LT(compound, singles / 2);
}

TEST(MultiDeviceTest, KvInterfaceOnSecondSsd) {
  SimWorld world;
  auto kv_ssd = std::make_unique<ssd::HybridSsd>(&world.env,
                                                 SimWorld::DefaultSsdConfig());
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    core::KvaccelOptions kv_opts;
    kv_opts.dev.memtable_bytes = 128 << 10;
    kv_opts.rollback = core::RollbackScheme::kDisabled;
    kv_opts.detector_period = FromMillis(1);
    kv_opts.kv_device = kv_ssd.get();  // paper §V-D multi-device setup
    std::unique_ptr<core::KvaccelDB> db;
    ASSERT_TRUE(
        core::KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db)
            .ok());
    for (int i = 0; i < 2500; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i % 400), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_GT(db->kv_stats().redirected_writes, 0u);
    // Redirected traffic landed on the SECOND device, not the main one.
    EXPECT_GT(kv_ssd->pcie().total_bytes(), 0u);
    EXPECT_GT(kv_ssd->KvUsedPages(0) + (db->dev()->Empty() ? 1 : 0), 0u);
    EXPECT_EQ(world.ssd->KvUsedPages(0), 0u);
    // Reads still see everything.
    Value v;
    for (int k = 0; k < 400; k += 31) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
    }
    // Rollback drains across devices.
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    ASSERT_TRUE(db->RollbackNow().ok());
    EXPECT_TRUE(db->dev()->Empty());
    ASSERT_TRUE(db->Close().ok());
  });
}

// Decode robustness: random bytes must never crash the parsers (they may
// reject or, for syntactically valid prefixes, succeed — both fine).
class FuzzDecode : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDecode, ParsersSurviveGarbage) {
  Random64 rng(GetParam());
  for (int round = 0; round < 200; round++) {
    size_t len = rng.Uniform(200);
    std::string bytes;
    for (size_t i = 0; i < len; i++) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    // Value decode.
    Slice in1(bytes);
    Value v;
    (void)Value::DecodeFrom(&in1, &v);
    // WriteBatch parse (validates structure internally).
    lsm::WriteBatch batch;
    (void)lsm::WriteBatch::ParseFrom(bytes, &batch);
    // VersionEdit decode.
    lsm::VersionEdit edit;
    (void)lsm::VersionEdit::DecodeFrom(bytes, &edit);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode, ::testing::Values(1, 17, 23, 99));

// WAL reader over corrupted logs: flip bytes; recovery must stop at the
// corruption (no crash, no garbage records accepted past it) and — because
// valid records follow the flipped byte — report Corruption rather than
// treating the damage as a benign torn tail.
class WalCorruption : public ::testing::TestWithParam<int> {};

TEST_P(WalCorruption, TornOrFlippedBytesStopRecoveryCleanly) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<fs::WritableFile> w;
    ASSERT_TRUE(world.fs->NewWritableFile("log", &w).ok());
    lsm::LogWriter writer(std::move(w));
    std::vector<std::string> payloads;
    for (int i = 0; i < 10; i++) {
      payloads.push_back("record-" + std::to_string(i) +
                         std::string(20, static_cast<char>('a' + i)));
      ASSERT_TRUE(writer.AddRecord(payloads.back(),
                                   payloads.back().size()).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.Close().ok());

    // Corrupt one byte somewhere in the middle of the file.
    std::unique_ptr<fs::RandomAccessFile> probe;
    ASSERT_TRUE(world.fs->NewRandomAccessFile("log", &probe).ok());
    size_t file_len = probe->physical_size();
    size_t corrupt_at = file_len / 10 * GetParam();
    // Rewrite the file with the flipped byte (SimFs files are append-only,
    // so rebuild).
    std::string contents;
    ASSERT_TRUE(probe->Read(0, file_len, &contents).ok());
    contents[corrupt_at] = static_cast<char>(contents[corrupt_at] ^ 0xff);
    std::unique_ptr<fs::WritableFile> rw;
    ASSERT_TRUE(world.fs->NewWritableFile("log", &rw).ok());
    ASSERT_TRUE(rw->Append(contents).ok());
    ASSERT_TRUE(rw->Sync().ok());
    ASSERT_TRUE(rw->Close().ok());

    std::unique_ptr<fs::RandomAccessFile> r;
    ASSERT_TRUE(world.fs->NewRandomAccessFile("log", &r).ok());
    lsm::LogReader reader(std::move(r));
    std::string payload;
    Status s;
    size_t recovered = 0;
    while (reader.ReadRecord(&payload, &s)) {
      // Every record accepted before the stop must be byte-exact.
      ASSERT_LT(recovered, payloads.size());
      EXPECT_EQ(payload, payloads[recovered]);
      recovered++;
    }
    // Mid-log damage with valid data after it is real corruption, not a
    // torn tail from a crash, and must be reported as such.
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    EXPECT_LT(recovered, 10u);  // corruption truncated recovery
  });
}

INSTANTIATE_TEST_SUITE_P(Offsets, WalCorruption,
                         ::testing::Values(1, 3, 5, 8));

}  // namespace
}  // namespace kvaccel
