#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fs/simfs.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

namespace kvaccel::fs {
namespace {

ssd::SsdConfig SmallConfig() {
  ssd::SsdConfig c;
  c.capacity_bytes = 64ull << 20;
  c.pages_per_block = 16;
  return c;
}

// Runs `body` inside a one-thread simulation.
void RunSim(const std::function<void(sim::SimEnv&, ssd::HybridSsd&)>& body) {
  sim::SimEnv env;
  ssd::HybridSsd ssd(&env, SmallConfig());
  env.Spawn("main", [&] { body(env, ssd); });
  env.Run();
}

TEST(SimFsTest, WriteReadRoundTrip) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("a.sst", &w).ok());
    ASSERT_TRUE(w->Append("hello ").ok());
    ASSERT_TRUE(w->Append("world").ok());
    ASSERT_TRUE(w->Close().ok());

    std::unique_ptr<RandomAccessFile> r;
    ASSERT_TRUE(fs.NewRandomAccessFile("a.sst", &r).ok());
    std::string out;
    ASSERT_TRUE(r->Read(0, 11, &out).ok());
    EXPECT_EQ(out, "hello world");
    ASSERT_TRUE(r->Read(6, 5, &out).ok());
    EXPECT_EQ(out, "world");
    // Reads beyond EOF return the available prefix / empty.
    ASSERT_TRUE(r->Read(6, 100, &out).ok());
    EXPECT_EQ(out, "world");
    ASSERT_TRUE(r->Read(100, 5, &out).ok());
    EXPECT_TRUE(out.empty());
  });
}

TEST(SimFsTest, LogicalSizeDrivesAllocation) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    uint64_t before = fs.free_sectors();
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("big", &w).ok());
    // 100 physical bytes representing 1 MiB logical.
    std::string tiny(100, 'x');
    ASSERT_TRUE(w->Append(tiny, 1 << 20).ok());
    ASSERT_TRUE(w->Close().ok());
    EXPECT_EQ(w->logical_size(), 1u << 20);
    EXPECT_EQ(w->physical_size(), 100u);
    // 1 MiB of 4 KiB sectors = 256 sectors consumed.
    EXPECT_EQ(before - fs.free_sectors(), 256u);
  });
}

TEST(SimFsTest, DeleteFreesSpaceAndTrims) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    uint64_t before = fs.free_sectors();
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("f", &w).ok());
    ASSERT_TRUE(w->Append(std::string(100, 'a'), 1 << 20).ok());
    ASSERT_TRUE(w->Close().ok());
    EXPECT_LT(fs.free_sectors(), before);
    uint64_t valid_before = ssd.block_ftl(0).valid_pages();
    EXPECT_GT(valid_before, 0u);
    ASSERT_TRUE(fs.DeleteFile("f").ok());
    EXPECT_EQ(fs.free_sectors(), before);
    EXPECT_FALSE(fs.FileExists("f"));
    EXPECT_LT(ssd.block_ftl(0).valid_pages(), valid_before);
    EXPECT_TRUE(fs.DeleteFile("f").IsNotFound());
  });
}

TEST(SimFsTest, RenameReplacesTarget) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("tmp", &w).ok());
    ASSERT_TRUE(w->Append("new-manifest").ok());
    ASSERT_TRUE(w->Close().ok());
    ASSERT_TRUE(fs.NewWritableFile("CURRENT", &w).ok());
    ASSERT_TRUE(w->Append("old").ok());
    ASSERT_TRUE(w->Close().ok());

    ASSERT_TRUE(fs.RenameFile("tmp", "CURRENT").ok());
    EXPECT_FALSE(fs.FileExists("tmp"));
    std::unique_ptr<RandomAccessFile> r;
    ASSERT_TRUE(fs.NewRandomAccessFile("CURRENT", &r).ok());
    std::string out;
    ASSERT_TRUE(r->Read(0, 100, &out).ok());
    EXPECT_EQ(out, "new-manifest");
    EXPECT_TRUE(fs.RenameFile("nope", "x").IsNotFound());
  });
}

TEST(SimFsTest, GetChildrenAndSizes) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    for (const char* name : {"000001.log", "000002.sst", "MANIFEST"}) {
      std::unique_ptr<WritableFile> w;
      ASSERT_TRUE(fs.NewWritableFile(name, &w).ok());
      ASSERT_TRUE(w->Append("x").ok());
      ASSERT_TRUE(w->Close().ok());
    }
    auto children = fs.GetChildren();
    EXPECT_EQ(children.size(), 3u);
    uint64_t logical, physical;
    ASSERT_TRUE(fs.GetFileSize("MANIFEST", &logical, &physical).ok());
    EXPECT_EQ(logical, 1u);
    EXPECT_EQ(physical, 1u);
    EXPECT_TRUE(fs.GetFileSize("nope", &logical).IsNotFound());
  });
}

TEST(SimFsTest, WritebackChargesDeviceInChunks) {
  RunSim([](sim::SimEnv& env, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0, /*writeback_chunk=*/64 * 1024);
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("wal", &w).ok());
    Nanos start = env.Now();
    // Appends below the chunk threshold cost no device time...
    ASSERT_TRUE(w->Append(std::string(1000, 'x'), 1000).ok());
    EXPECT_EQ(env.Now(), start);
    // ...but crossing it triggers a device write burst.
    ASSERT_TRUE(w->Append(std::string(100, 'y'), 64 * 1024).ok());
    EXPECT_GT(env.Now(), start);
    EXPECT_GT(ssd.nand().bytes_written(), 0u);
  });
}

TEST(SimFsTest, SyncFlushesPartialSector) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("wal", &w).ok());
    ASSERT_TRUE(w->Append("tiny record").ok());
    EXPECT_EQ(ssd.nand().bytes_written(), 0u);
    ASSERT_TRUE(w->Sync().ok());
    EXPECT_EQ(ssd.nand().bytes_written(), 4096u);  // one sector
    ASSERT_TRUE(w->Close().ok());
  });
}

TEST(SimFsTest, NoSpaceWhenFull) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("huge", &w).ok());
    uint64_t too_big = (fs.total_sectors() + 1) * 4096;
    Status s = w->Append(std::string(8, 'x'), too_big);
    if (s.ok()) s = w->Sync();  // writeback is what hits the capacity wall
    EXPECT_TRUE(s.IsNoSpace());
  });
}

TEST(SimFsTest, RecreateTruncates) {
  RunSim([](sim::SimEnv&, ssd::HybridSsd& ssd) {
    SimFs fs(&ssd, 0);
    uint64_t before = fs.free_sectors();
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(fs.NewWritableFile("f", &w).ok());
    ASSERT_TRUE(w->Append(std::string(10, 'a'), 1 << 20).ok());
    ASSERT_TRUE(w->Close().ok());
    ASSERT_TRUE(fs.NewWritableFile("f", &w).ok());
    ASSERT_TRUE(w->Append("b").ok());
    ASSERT_TRUE(w->Sync().ok());  // force the dirty byte onto the device
    ASSERT_TRUE(w->Close().ok());
    uint64_t logical;
    ASSERT_TRUE(fs.GetFileSize("f", &logical).ok());
    EXPECT_EQ(logical, 1u);
    // Old 1 MiB allocation was released (only 1 sector now held).
    EXPECT_EQ(before - fs.free_sectors(), 1u);
  });
}

}  // namespace
}  // namespace kvaccel::fs
