// Two-node HA pair (DESIGN.md §12): interconnect timing and fault sites,
// replicated-sequence writes, sync/async replication through
// ReplicatedKvaccelDB, backup promotion (check::PromoteNode), the backup-side
// Dev-LSM circuit breaker, and pinned-seed two-node nemesis schedules.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/failover.h"
#include "check/nemesis.h"
#include "core/replicated_kvaccel_db.h"
#include "devlsm/dev_lsm.h"
#include "fs/simfs.h"
#include "lsm/db.h"
#include "sim/fault.h"
#include "sim/net_link.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::TestKey;

core::KvaccelOptions PairKvOptions() {
  core::KvaccelOptions o;
  o.detector_period = FromMillis(1);
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  o.rollback = core::RollbackScheme::kDisabled;
  return o;
}

// Two full node worlds sharing one clock and one fault injector, mirroring
// the nemesis harness' HA world.
struct PairWorld {
  sim::SimEnv env;
  sim::FaultInjector inj{&env, 0xFA17};
  std::unique_ptr<ssd::HybridSsd> ssd_a, ssd_b;
  std::unique_ptr<sim::CpuPool> cpu_a, cpu_b;
  std::unique_ptr<fs::SimFs> fs_a, fs_b;
  std::unique_ptr<devlsm::DevLsm> dev_a, dev_b;

  PairWorld() {
    ssd::SsdConfig c;
    c.capacity_bytes = 2ull << 30;
    ssd_a = std::make_unique<ssd::HybridSsd>(&env, c);
    ssd_b = std::make_unique<ssd::HybridSsd>(&env, c);
    cpu_a = std::make_unique<sim::CpuPool>(&env, "host-a", 8);
    cpu_b = std::make_unique<sim::CpuPool>(&env, "host-b", 8);
    fs_a = std::make_unique<fs::SimFs>(ssd_a.get(), 0);
    fs_b = std::make_unique<fs::SimFs>(ssd_b.get(), 0);
    dev_a = std::make_unique<devlsm::DevLsm>(ssd_a.get(), 0,
                                             PairKvOptions().dev);
    dev_b = std::make_unique<devlsm::DevLsm>(ssd_b.get(), 0,
                                             PairKvOptions().dev);
    env.set_fault_injector(&inj);
  }

  core::ReplNode NodeA() {
    return core::ReplNode{ssd_a.get(), fs_a.get(), cpu_a.get(), dev_a.get()};
  }
  core::ReplNode NodeB() {
    return core::ReplNode{ssd_b.get(), fs_b.get(), cpu_b.get(), dev_b.get()};
  }

  void Run(std::function<void()> body) {
    env.Spawn("test-main", std::move(body));
    env.Run();
  }
};

// ---- sim::NetLink ----

TEST(NetLinkTest, ChargesWireTimeAndLatency) {
  sim::SimEnv env;
  env.Spawn("t", [&] {
    sim::NetLink link(&env, "nl", /*bytes_per_sec=*/1e9, FromMicros(30));
    Nanos t0 = env.Now();
    ASSERT_TRUE(link.Send(1'000'000).ok());  // 1 MB over 1 GB/s = 1 ms wire
    EXPECT_EQ(env.Now() - t0, FromMillis(1) + FromMicros(30));
    EXPECT_EQ(link.messages(), 1u);
    EXPECT_EQ(link.drops(), 0u);
  });
  env.Run();
}

TEST(NetLinkTest, MessagesAreFifoBehindEarlierSenders) {
  sim::SimEnv env;
  std::vector<Nanos> done;
  sim::NetLink link(&env, "nl", 1e9, 0);
  env.Spawn("a", [&] {
    ASSERT_TRUE(link.Send(1'000'000).ok());
    done.push_back(env.Now());
  });
  env.Spawn("b", [&] {
    ASSERT_TRUE(link.Send(1'000'000).ok());
    done.push_back(env.Now());
  });
  env.Run();
  ASSERT_EQ(done.size(), 2u);
  // The second message serializes behind the first on the shared pipe.
  EXPECT_EQ(done[0], FromMillis(1));
  EXPECT_EQ(done[1], FromMillis(2));
}

TEST(NetLinkTest, TransientFaultDropsTheMessage) {
  sim::SimEnv env;
  sim::FaultInjector inj(&env, 7);
  env.set_fault_injector(&inj);
  sim::FaultRule always;
  always.probability = 1.0;
  inj.Arm("net.send.transient", always);
  env.Spawn("t", [&] {
    sim::NetLink link(&env, "nl", 1e9, FromMicros(30));
    Status s = link.Send(4096);
    EXPECT_TRUE(s.IsIOError()) << s.ToString();
    EXPECT_EQ(link.drops(), 1u);
    EXPECT_EQ(link.messages(), 0u);
  });
  env.Run();
}

// ---- lsm::WriteOptions::replicated_seq ----

TEST(ReplicatedSeqTest, WriteAppliesAtExactSequenceAndAdvancesClock) {
  test::SimWorld world;
  world.Run([&] {
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db)
                    .ok());
    ASSERT_TRUE(db->Put({}, "a", Value::Synthetic(1, 64)).ok());

    lsm::WriteBatch batch;
    batch.Put("b", Value::Synthetic(2, 64));
    batch.Put("c", Value::Synthetic(3, 64));
    lsm::WriteOptions wo;
    wo.sync = true;
    wo.replicated_seq = 100;  // a follower applying the leader's sequences
    ASSERT_TRUE(db->Write(wo, &batch).ok());

    Value v;
    lsm::SequenceNumber seq = 0;
    ASSERT_TRUE(db->GetWithSequence({}, "b", &v, &seq).ok());
    EXPECT_EQ(seq, 100u);
    ASSERT_TRUE(db->GetWithSequence({}, "c", &v, &seq).ok());
    EXPECT_EQ(seq, 101u);
    // The local sequence clock must have jumped past the applied batch so
    // later local writes cannot collide with replicated ones.
    EXPECT_GT(db->AllocateSequence(1), 101u);
    ASSERT_TRUE(db->Close().ok());
  });
}

// ---- ReplicatedKvaccelDB, sync acks ----

TEST(HaPairTest, SyncWritesSurviveFailover) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;  // sync
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());

    for (uint64_t i = 0; i < 60; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }
    for (uint64_t i = 0; i < 60; i += 5) {
      ASSERT_TRUE(pair->Delete({}, TestKey(i)).ok());
    }
    for (uint64_t i = 1; i < 10; i++) {  // overwrites
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(1000 + i, 512))
                      .ok());
    }
    Value v;
    ASSERT_TRUE(pair->Get({}, TestKey(1), &v).ok());
    // Key 10 is deleted and outside the overwrite range, key 5 was
    // resurrected by the overwrite loop above.
    EXPECT_TRUE(pair->Get({}, TestKey(10), &v).IsNotFound());
    ASSERT_TRUE(pair->Get({}, TestKey(5), &v).ok());

    ASSERT_TRUE(pair->Close().ok());
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GT(st.wal_records, 0u);
    EXPECT_EQ(st.lost_entries, 0u);  // sync acks never lose
    pair.reset();

    // The primary node is lost; only the backup's durable state survives.
    w.fs_a->DropAllDirty();
    w.fs_b->DropAllDirty();
    check::FailoverReport rep;
    std::unique_ptr<core::KvaccelDB> promoted;
    Status ps = check::PromoteNode(db_opts, kv_opts, w.NodeB(), &w.env, &rep,
                                   &promoted);
    ASSERT_TRUE(ps.ok()) << ps.ToString() << " " << rep.first_error;
    EXPECT_EQ(rep.checker_errors, 0);
    EXPECT_GT(rep.promote_ns, 0u);

    for (uint64_t i = 0; i < 60; i++) {
      const bool deleted = (i % 5 == 0) && !(i >= 1 && i < 10);
      Status gs = promoted->Get({}, TestKey(i), &v);
      if (deleted) {
        EXPECT_TRUE(gs.IsNotFound()) << "key " << i << " should be deleted";
      } else {
        const uint64_t seed = (i >= 1 && i < 10) ? 1000 + i : i;
        ASSERT_TRUE(gs.ok()) << "key " << i << ": " << gs.ToString();
        EXPECT_EQ(v, Value::Synthetic(seed, 512)) << "key " << i;
      }
    }
    // Promoted iterator walks the surviving keys in order.
    auto it = promoted->NewIterator({});
    std::string prev;
    int seen = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string k = it->key().ToString();
      EXPECT_LT(prev, k);
      prev = k;
      seen++;
    }
    EXPECT_EQ(seen, 49);  // 60 keys - 12 deleted + key 5 resurrected
    it.reset();
    ASSERT_TRUE(promoted->Close().ok());
  });
}

// ---- ReplicatedKvaccelDB, async acks ----

TEST(HaPairTest, AsyncBacklogDrainsToBackup) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    ro.ack = core::ReplAck::kAsync;
    ro.async_queue_cap = 32;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());

    // Hold the shipper: acks return immediately, records pile up.
    pair->PauseShipping(true);
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    EXPECT_EQ(pair->repl_stats().records_applied, 0u);

    pair->PauseShipping(false);
    pair->DrainShipping();
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GE(st.records_applied, 8u);
    EXPECT_GE(st.async_queue_peak, 8u);
    EXPECT_EQ(st.lost_entries, 0u);

    // Every drained write is now readable on the backup itself.
    Value v;
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v, Value::Synthetic(i, 256));
    }
    ASSERT_TRUE(pair->Close().ok());
  });
}

// Satellite: the backup-side Dev-LSM circuit breaker. A transient device
// fault during catch-up exhausts the backup's retry budget, latches its
// Detector unhealthy and degrades intents to the host path (WAL-bypassing
// ingest); after the cooldown the next intent is the half-open probe and its
// success closes the circuit — intents flow to the device again.
TEST(HaPairTest, BackupDevTransientOpensBreakerThenHalfOpenProbeRecovers) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    // Stop trigger of 1 puts the Detector's L0 edge check at "always": every
    // pair write takes the redirect path and ships a kRedirectIntent.
    db_opts.l0_stop_writes_trigger = 1;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    ro.ack = core::ReplAck::kAsync;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    w.env.SleepFor(FromMillis(5));  // let the primary's detector poll
    ASSERT_TRUE(pair->primary()->detector()->stall_detected());

    // Build a catch-up backlog of redirect intents, then make the backup's
    // device fail every command while they apply.
    pair->PauseShipping(true);
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    ASSERT_GT(pair->primary()->kv_stats().redirected_writes, 0u);
    sim::FaultRule dead;
    dead.probability = 1.0;
    w.inj.Arm("devlsm.put.transient", dead);
    pair->PauseShipping(false);
    pair->DrainShipping();

    const core::ReplStats mid = pair->repl_stats();
    EXPECT_GE(mid.backup_dev_fallbacks, 8u);  // every intent degraded
    // Breaker open: device_healthy(0) reads the latch, not the cooldown.
    EXPECT_FALSE(pair->backup()->detector()->device_healthy(0));
    // Degraded intents are still served by the backup (host path).
    Value v;
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
    }

    // Fault clears; after the cooldown the next intent is the half-open
    // probe and its success closes the circuit.
    w.inj.Disarm("devlsm.put.transient");
    w.env.SleepFor(kv_opts.device_unhealthy_cooldown + FromMillis(1));
    for (uint64_t i = 100; i < 104; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    pair->DrainShipping();
    EXPECT_TRUE(pair->backup()->detector()->device_healthy(0));
    EXPECT_EQ(pair->repl_stats().backup_dev_fallbacks,
              mid.backup_dev_fallbacks);  // recovery batch used the device
    ASSERT_TRUE(pair->Close().ok());
  });
}

// ---- Two-node nemesis schedules (DESIGN.md §9 + §12) ----

// 10 cycles walk the full HA crash-site table once (one site per cycle,
// including crash.net.send.mid); every cycle ends in a verified failover.
TEST(HaNemesisTest, SyncFailoversServeEveryAckedWrite) {
  check::NemesisOptions opt;
  opt.seed = 42;
  opt.cycles = 10;
  opt.ha = true;
  opt.repl_ack = 0;
  check::NemesisResult r = check::RunNemesis(opt);
  EXPECT_TRUE(r.ok) << "seed=" << opt.seed << " cycle=" << r.cycles_run
                    << ": " << r.error;
  EXPECT_EQ(r.failovers, 10);
  EXPECT_EQ(r.ha_lost_entries, 0u) << "sync acks must never lose";
  EXPECT_GE(r.crashes, 5) << "crash schedule went quiet";
}

TEST(HaNemesisTest, AsyncLossIsBoundedAndScheduleDeterministic) {
  check::NemesisOptions opt;
  opt.seed = 99;
  opt.cycles = 6;
  opt.ha = true;
  opt.repl_ack = 1;
  check::NemesisResult a = check::RunNemesis(opt);
  check::NemesisResult b = check::RunNemesis(opt);
  ASSERT_TRUE(a.ok) << "seed=" << opt.seed << ": " << a.error;
  ASSERT_TRUE(b.ok) << "seed=" << opt.seed << ": " << b.error;
  EXPECT_EQ(a.trace, b.trace) << "nondeterministic HA schedule";
  EXPECT_EQ(a.failovers, 6);
  // The harness itself diverges when the loss bound is exceeded; this pins
  // the reported number so a quiet regression in accounting is visible too.
  EXPECT_LE(a.ha_lost_entries, 6u * (8 + 2) * 8);
}

TEST(HaNemesisTest, TraceHeaderRoundTripsHaFields) {
  check::NemesisOptions opt;
  opt.seed = 7;
  opt.cycles = 2;
  opt.ha = true;
  opt.repl_ack = 1;
  opt.trace_dump_dir = ::testing::TempDir() + "ha_trace_dump";
  opt.corrupt_model_at_cycle = 1;  // force a divergence so the trace dumps
  check::NemesisResult r = check::RunNemesis(opt);
  ASSERT_FALSE(r.ok);
  ASSERT_FALSE(r.trace_path.empty());
  check::NemesisOptions parsed;
  ASSERT_TRUE(check::ParseNemesisTrace(r.trace_path, &parsed).ok());
  EXPECT_TRUE(parsed.ha);
  EXPECT_EQ(parsed.repl_ack, 1);
  EXPECT_EQ(parsed.seed, 7u);
}

}  // namespace
}  // namespace kvaccel
