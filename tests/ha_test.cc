// Two-node HA pair (DESIGN.md §12): interconnect timing and fault sites,
// replicated-sequence writes, sync/async replication through
// ReplicatedKvaccelDB, backup promotion (check::PromoteNode), the backup-side
// Dev-LSM circuit breaker, and pinned-seed two-node nemesis schedules.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/failover.h"
#include "check/nemesis.h"
#include "core/replicated_kvaccel_db.h"
#include "devlsm/dev_lsm.h"
#include "fs/simfs.h"
#include "lsm/db.h"
#include "sim/fault.h"
#include "sim/net_link.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"
#include "tests/test_util.h"

namespace kvaccel {
namespace {

using test::TestKey;

core::KvaccelOptions PairKvOptions() {
  core::KvaccelOptions o;
  o.detector_period = FromMillis(1);
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  o.rollback = core::RollbackScheme::kDisabled;
  return o;
}

// Two full node worlds sharing one clock and one fault injector, mirroring
// the nemesis harness' HA world.
struct PairWorld {
  sim::SimEnv env;
  sim::FaultInjector inj{&env, 0xFA17};
  std::unique_ptr<ssd::HybridSsd> ssd_a, ssd_b;
  std::unique_ptr<sim::CpuPool> cpu_a, cpu_b;
  std::unique_ptr<fs::SimFs> fs_a, fs_b;
  std::unique_ptr<devlsm::DevLsm> dev_a, dev_b;

  PairWorld() {
    ssd::SsdConfig c;
    c.capacity_bytes = 2ull << 30;
    ssd_a = std::make_unique<ssd::HybridSsd>(&env, c);
    ssd_b = std::make_unique<ssd::HybridSsd>(&env, c);
    cpu_a = std::make_unique<sim::CpuPool>(&env, "host-a", 8);
    cpu_b = std::make_unique<sim::CpuPool>(&env, "host-b", 8);
    fs_a = std::make_unique<fs::SimFs>(ssd_a.get(), 0);
    fs_b = std::make_unique<fs::SimFs>(ssd_b.get(), 0);
    dev_a = std::make_unique<devlsm::DevLsm>(ssd_a.get(), 0,
                                             PairKvOptions().dev);
    dev_b = std::make_unique<devlsm::DevLsm>(ssd_b.get(), 0,
                                             PairKvOptions().dev);
    env.set_fault_injector(&inj);
  }

  core::ReplNode NodeA() {
    return core::ReplNode{ssd_a.get(), fs_a.get(), cpu_a.get(), dev_a.get()};
  }
  core::ReplNode NodeB() {
    return core::ReplNode{ssd_b.get(), fs_b.get(), cpu_b.get(), dev_b.get()};
  }

  void Run(std::function<void()> body) {
    env.Spawn("test-main", std::move(body));
    env.Run();
  }
};

// ---- sim::NetLink ----

TEST(NetLinkTest, ChargesWireTimeAndLatency) {
  sim::SimEnv env;
  env.Spawn("t", [&] {
    sim::NetLink link(&env, "nl", /*bytes_per_sec=*/1e9, FromMicros(30));
    Nanos t0 = env.Now();
    ASSERT_TRUE(link.Send(1'000'000).ok());  // 1 MB over 1 GB/s = 1 ms wire
    EXPECT_EQ(env.Now() - t0, FromMillis(1) + FromMicros(30));
    EXPECT_EQ(link.messages(), 1u);
    EXPECT_EQ(link.drops(), 0u);
  });
  env.Run();
}

TEST(NetLinkTest, MessagesAreFifoBehindEarlierSenders) {
  sim::SimEnv env;
  std::vector<Nanos> done;
  sim::NetLink link(&env, "nl", 1e9, 0);
  env.Spawn("a", [&] {
    ASSERT_TRUE(link.Send(1'000'000).ok());
    done.push_back(env.Now());
  });
  env.Spawn("b", [&] {
    ASSERT_TRUE(link.Send(1'000'000).ok());
    done.push_back(env.Now());
  });
  env.Run();
  ASSERT_EQ(done.size(), 2u);
  // The second message serializes behind the first on the shared pipe.
  EXPECT_EQ(done[0], FromMillis(1));
  EXPECT_EQ(done[1], FromMillis(2));
}

TEST(NetLinkTest, TransientFaultDropsTheMessage) {
  sim::SimEnv env;
  sim::FaultInjector inj(&env, 7);
  env.set_fault_injector(&inj);
  sim::FaultRule always;
  always.probability = 1.0;
  inj.Arm("net.send.transient", always);
  env.Spawn("t", [&] {
    sim::NetLink link(&env, "nl", 1e9, FromMicros(30));
    Status s = link.Send(4096);
    EXPECT_TRUE(s.IsIOError()) << s.ToString();
    EXPECT_EQ(link.drops(), 1u);
    EXPECT_EQ(link.messages(), 0u);
  });
  env.Run();
}

// ---- lsm::WriteOptions::replicated_seq ----

TEST(ReplicatedSeqTest, WriteAppliesAtExactSequenceAndAdvancesClock) {
  test::SimWorld world;
  world.Run([&] {
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(test::SmallDbOptions(), world.MakeDbEnv(), &db)
                    .ok());
    ASSERT_TRUE(db->Put({}, "a", Value::Synthetic(1, 64)).ok());

    lsm::WriteBatch batch;
    batch.Put("b", Value::Synthetic(2, 64));
    batch.Put("c", Value::Synthetic(3, 64));
    lsm::WriteOptions wo;
    wo.sync = true;
    wo.replicated_seq = 100;  // a follower applying the leader's sequences
    ASSERT_TRUE(db->Write(wo, &batch).ok());

    Value v;
    lsm::SequenceNumber seq = 0;
    ASSERT_TRUE(db->GetWithSequence({}, "b", &v, &seq).ok());
    EXPECT_EQ(seq, 100u);
    ASSERT_TRUE(db->GetWithSequence({}, "c", &v, &seq).ok());
    EXPECT_EQ(seq, 101u);
    // The local sequence clock must have jumped past the applied batch so
    // later local writes cannot collide with replicated ones.
    EXPECT_GT(db->AllocateSequence(1), 101u);
    ASSERT_TRUE(db->Close().ok());
  });
}

// ---- ReplicatedKvaccelDB, sync acks ----

TEST(HaPairTest, SyncWritesSurviveFailover) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;  // sync
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());

    for (uint64_t i = 0; i < 60; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }
    for (uint64_t i = 0; i < 60; i += 5) {
      ASSERT_TRUE(pair->Delete({}, TestKey(i)).ok());
    }
    for (uint64_t i = 1; i < 10; i++) {  // overwrites
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(1000 + i, 512))
                      .ok());
    }
    Value v;
    ASSERT_TRUE(pair->Get({}, TestKey(1), &v).ok());
    // Key 10 is deleted and outside the overwrite range, key 5 was
    // resurrected by the overwrite loop above.
    EXPECT_TRUE(pair->Get({}, TestKey(10), &v).IsNotFound());
    ASSERT_TRUE(pair->Get({}, TestKey(5), &v).ok());

    ASSERT_TRUE(pair->Close().ok());
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GT(st.wal_records, 0u);
    EXPECT_EQ(st.lost_entries, 0u);  // sync acks never lose
    pair.reset();

    // The primary node is lost; only the backup's durable state survives.
    w.fs_a->DropAllDirty();
    w.fs_b->DropAllDirty();
    check::FailoverReport rep;
    std::unique_ptr<core::KvaccelDB> promoted;
    Status ps = check::PromoteNode(db_opts, kv_opts, w.NodeB(), &w.env, &rep,
                                   &promoted);
    ASSERT_TRUE(ps.ok()) << ps.ToString() << " " << rep.first_error;
    EXPECT_EQ(rep.checker_errors, 0);
    EXPECT_GT(rep.promote_ns, 0u);

    for (uint64_t i = 0; i < 60; i++) {
      const bool deleted = (i % 5 == 0) && !(i >= 1 && i < 10);
      Status gs = promoted->Get({}, TestKey(i), &v);
      if (deleted) {
        EXPECT_TRUE(gs.IsNotFound()) << "key " << i << " should be deleted";
      } else {
        const uint64_t seed = (i >= 1 && i < 10) ? 1000 + i : i;
        ASSERT_TRUE(gs.ok()) << "key " << i << ": " << gs.ToString();
        EXPECT_EQ(v, Value::Synthetic(seed, 512)) << "key " << i;
      }
    }
    // Promoted iterator walks the surviving keys in order.
    auto it = promoted->NewIterator({});
    std::string prev;
    int seen = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string k = it->key().ToString();
      EXPECT_LT(prev, k);
      prev = k;
      seen++;
    }
    EXPECT_EQ(seen, 49);  // 60 keys - 12 deleted + key 5 resurrected
    it.reset();
    ASSERT_TRUE(promoted->Close().ok());
  });
}

// ---- ReplicatedKvaccelDB, async acks ----

TEST(HaPairTest, AsyncBacklogDrainsToBackup) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    ro.ack = core::ReplAck::kAsync;
    ro.async_queue_cap = 32;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());

    // Hold the shipper: acks return immediately, records pile up.
    pair->PauseShipping(true);
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    EXPECT_EQ(pair->repl_stats().records_applied, 0u);

    pair->PauseShipping(false);
    pair->DrainShipping();
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GE(st.records_applied, 8u);
    EXPECT_GE(st.async_queue_peak, 8u);
    EXPECT_EQ(st.lost_entries, 0u);

    // Every drained write is now readable on the backup itself.
    Value v;
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v, Value::Synthetic(i, 256));
    }
    ASSERT_TRUE(pair->Close().ok());
  });
}

// Satellite: the backup-side Dev-LSM circuit breaker. A transient device
// fault during catch-up exhausts the backup's retry budget, latches its
// Detector unhealthy and degrades intents to the host path (WAL-bypassing
// ingest); after the cooldown the next intent is the half-open probe and its
// success closes the circuit — intents flow to the device again.
TEST(HaPairTest, BackupDevTransientOpensBreakerThenHalfOpenProbeRecovers) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    // Stop trigger of 1 puts the Detector's L0 edge check at "always": every
    // pair write takes the redirect path and ships a kRedirectIntent.
    db_opts.l0_stop_writes_trigger = 1;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    ro.ack = core::ReplAck::kAsync;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    w.env.SleepFor(FromMillis(5));  // let the primary's detector poll
    ASSERT_TRUE(pair->primary()->detector()->stall_detected());

    // Build a catch-up backlog of redirect intents, then make the backup's
    // device fail every command while they apply.
    pair->PauseShipping(true);
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    ASSERT_GT(pair->primary()->kv_stats().redirected_writes, 0u);
    sim::FaultRule dead;
    dead.probability = 1.0;
    w.inj.Arm("devlsm.put.transient", dead);
    pair->PauseShipping(false);
    pair->DrainShipping();

    const core::ReplStats mid = pair->repl_stats();
    EXPECT_GE(mid.backup_dev_fallbacks, 8u);  // every intent degraded
    // Breaker open: device_healthy(0) reads the latch, not the cooldown.
    EXPECT_FALSE(pair->backup()->detector()->device_healthy(0));
    // Degraded intents are still served by the backup (host path).
    Value v;
    for (uint64_t i = 0; i < 8; i++) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
    }

    // Fault clears; after the cooldown the next intent is the half-open
    // probe and its success closes the circuit.
    w.inj.Disarm("devlsm.put.transient");
    w.env.SleepFor(kv_opts.device_unhealthy_cooldown + FromMillis(1));
    for (uint64_t i = 100; i < 104; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    pair->DrainShipping();
    EXPECT_TRUE(pair->backup()->detector()->device_healthy(0));
    EXPECT_EQ(pair->repl_stats().backup_dev_fallbacks,
              mid.backup_dev_fallbacks);  // recovery batch used the device
    ASSERT_TRUE(pair->Close().ok());
  });
}

// ---- Two-node nemesis schedules (DESIGN.md §9 + §12) ----

// 10 cycles walk the full HA crash-site table once (one site per cycle,
// including crash.net.send.mid); every cycle ends in a verified failover.
TEST(HaNemesisTest, SyncFailoversServeEveryAckedWrite) {
  check::NemesisOptions opt;
  opt.seed = 42;
  opt.cycles = 10;
  opt.ha = true;
  opt.repl_ack = 0;
  check::NemesisResult r = check::RunNemesis(opt);
  EXPECT_TRUE(r.ok) << "seed=" << opt.seed << " cycle=" << r.cycles_run
                    << ": " << r.error;
  EXPECT_EQ(r.failovers, 10);
  EXPECT_EQ(r.ha_lost_entries, 0u) << "sync acks must never lose";
  EXPECT_GE(r.crashes, 5) << "crash schedule went quiet";
}

TEST(HaNemesisTest, AsyncLossIsBoundedAndScheduleDeterministic) {
  check::NemesisOptions opt;
  opt.seed = 99;
  opt.cycles = 6;
  opt.ha = true;
  opt.repl_ack = 1;
  check::NemesisResult a = check::RunNemesis(opt);
  check::NemesisResult b = check::RunNemesis(opt);
  ASSERT_TRUE(a.ok) << "seed=" << opt.seed << ": " << a.error;
  ASSERT_TRUE(b.ok) << "seed=" << opt.seed << ": " << b.error;
  EXPECT_EQ(a.trace, b.trace) << "nondeterministic HA schedule";
  EXPECT_EQ(a.failovers, 6);
  // The harness itself diverges when the loss bound is exceeded; this pins
  // the reported number so a quiet regression in accounting is visible too.
  EXPECT_LE(a.ha_lost_entries, 6u * (8 + 2) * 8);
}

// ---- Partition, fencing, reconciliation (DESIGN.md §12) ----

TEST(FaultSiteTest, PartitionSitesAreRegistered) {
  const std::vector<sim::FaultSiteInfo>& sites = sim::KnownFaultSites();
  for (const char* want :
       {"net.partition.sym", "net.partition.tx", "net.partition.ack",
        "net.delay", "net.dup", "net.reorder"}) {
    bool found = false;
    for (const sim::FaultSiteInfo& s : sites) {
      if (std::string(s.site) == want) found = true;
    }
    EXPECT_TRUE(found) << want << " missing from KnownFaultSites()";
  }
}

TEST(NetLinkTest, PartitionCutsTheWireAndDelayAddsJitter) {
  sim::SimEnv env;
  sim::FaultInjector inj(&env, 11);
  env.set_fault_injector(&inj);
  env.Spawn("t", [&] {
    sim::NetLink link(&env, "nl", 1e9, FromMicros(30));
    sim::FaultRule cut;
    cut.probability = 1.0;

    inj.Arm("net.partition.sym", cut);
    Status s = link.Send(4096);
    EXPECT_TRUE(s.IsIOError()) << s.ToString();
    EXPECT_EQ(link.partition_drops(), 1u);
    EXPECT_EQ(link.messages(), 0u);
    inj.Disarm("net.partition.sym");

    // Asymmetric forward cut: same observable from the sender's side.
    inj.Arm("net.partition.tx", cut);
    EXPECT_TRUE(link.Send(4096).IsIOError());
    EXPECT_EQ(link.partition_drops(), 2u);
    inj.Disarm("net.partition.tx");

    // A delay spike rides on top of serialization + latency; the message is
    // still delivered.
    inj.Arm("net.delay", cut);
    Nanos t0 = env.Now();
    ASSERT_TRUE(link.Send(1'000'000).ok());
    EXPECT_GT(env.Now() - t0, FromMillis(1) + FromMicros(30));
    EXPECT_EQ(link.delay_spikes(), 1u);
    EXPECT_EQ(link.messages(), 1u);
  });
  env.Run();
}

// A symmetric partition starves the lease: writes fail while the wire is
// cut, the primary self-fences once the lease lapses (Busy, counted), and a
// heal lets heartbeats renew the lease — the pair resumes with nothing lost.
TEST(HaPairTest, LeaseLapseFencesThePrimaryUntilHeal) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;  // sync, 50ms lease / 10ms heartbeat
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    EXPECT_FALSE(pair->fenced());

    sim::FaultRule cut;
    cut.probability = 1.0;
    w.inj.Arm("net.partition.sym", cut);
    // The lease is still live: a write passes the fence but fails to ship.
    Status doomed = pair->Put({}, TestKey(100), Value::Synthetic(100, 256));
    EXPECT_FALSE(doomed.ok());
    EXPECT_FALSE(doomed.IsBusy()) << "not yet fenced: " << doomed.ToString();

    w.env.SleepFor(2 * ro.lease_duration + ro.promote_safety_margin);
    EXPECT_TRUE(pair->fenced());
    Status fenced = pair->Put({}, TestKey(101), Value::Synthetic(101, 256));
    EXPECT_TRUE(fenced.IsBusy()) << fenced.ToString();

    // Heal: heartbeats renew the lease; the primary was never deposed.
    w.inj.Disarm("net.partition.sym");
    w.env.SleepFor(3 * ro.heartbeat_period);
    EXPECT_FALSE(pair->fenced());
    EXPECT_FALSE(pair->deposed());
    ASSERT_TRUE(
        pair->Put({}, TestKey(102), Value::Synthetic(102, 256)).ok());

    ASSERT_TRUE(pair->Close().ok());
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GT(st.heartbeat_records, 0u);
    EXPECT_GE(st.fenced_write_rejects, 1u);
    EXPECT_GE(st.lease_expirations, 1u);
    EXPECT_EQ(st.lost_entries, 0u);  // sync acks: doomed writes not acked
  });
}

// Split-brain prevention, detach half: the backup may not be detached for
// promotion while the primary's lease could still be live.
TEST(HaPairTest, DetachBackupRefusesWhileLeaseMayBeLive) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    for (uint64_t i = 0; i < 5; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }

    sim::FaultRule cut;
    cut.probability = 1.0;
    w.inj.Arm("net.partition.sym", cut);
    // Immediately after the cut the primary's lease is still live on the
    // backup's clock — promotion here would be split-brain.
    Status early = pair->DetachBackup();
    EXPECT_TRUE(early.IsBusy()) << early.ToString();

    // Once last-applied + lease + margin has verifiably passed, detach is
    // safe.
    w.env.SleepFor(2 * ro.lease_duration + 2 * ro.promote_safety_margin);
    ASSERT_TRUE(pair->DetachBackup().ok());
    ASSERT_TRUE(pair->Close().ok());
  });
}

// Split-brain prevention, fencing half: after the partition the backup is
// promoted under a bumped durable epoch. When the partition heals, the old
// primary's first heartbeat finds the newer epoch and deposes it
// permanently — no write is ever acked on both sides of the split.
TEST(HaPairTest, StaleEpochDeposesHealedPrimary) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    EXPECT_EQ(pair->epoch(), 1u);
    for (uint64_t i = 0; i < 20; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }

    sim::FaultRule cut;
    cut.probability = 1.0;
    w.inj.Arm("net.partition.sym", cut);
    // Doomed writes: past the fence (lease still live), ship fails, never
    // acked anywhere.
    for (uint64_t i = 200; i < 204; i++) {
      EXPECT_FALSE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    w.env.SleepFor(2 * ro.lease_duration + 2 * ro.promote_safety_margin);
    ASSERT_TRUE(pair->fenced());
    const uint64_t next_epoch = pair->epoch() + 1;
    ASSERT_TRUE(pair->DetachBackup().ok());

    check::FailoverReport rep;
    std::unique_ptr<core::KvaccelDB> promoted;
    Status ps = check::PromoteNode(db_opts, kv_opts, w.NodeB(), &w.env, &rep,
                                   &promoted, next_epoch);
    ASSERT_TRUE(ps.ok()) << ps.ToString() << " " << rep.first_error;
    EXPECT_EQ(rep.fence_epoch, next_epoch);
    // The promoted node serves fresh writes under the new epoch.
    for (uint64_t i = 300; i < 305; i++) {
      ASSERT_TRUE(
          promoted->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }

    // Heal the partition. The old primary's heartbeats reach node B again,
    // find the bumped durable epoch, and depose it for good.
    w.inj.Disarm("net.partition.sym");
    w.env.SleepFor(5 * ro.heartbeat_period);
    EXPECT_TRUE(pair->deposed());
    EXPECT_TRUE(pair->fenced());
    Status dead = pair->Put({}, TestKey(400), Value::Synthetic(400, 256));
    EXPECT_TRUE(dead.IsBusy()) << dead.ToString();
    // Deposed is permanent: more time does not resurrect the old primary.
    w.env.SleepFor(5 * ro.heartbeat_period);
    EXPECT_TRUE(
        pair->Put({}, TestKey(401), Value::Synthetic(401, 256)).IsBusy());

    ASSERT_TRUE(pair->Close().ok());
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GT(st.fenced_records, 0u) << "stale-epoch rejection not seen";
    EXPECT_EQ(st.lost_entries, 0u);
    ASSERT_TRUE(promoted->Close().ok());
  });
}

// Full reconciliation round trip in delta mode: partition → promote under a
// bumped epoch → diverge both sides → RejoinNode quarantines the old
// primary's unacked tail and ships the delta via the WAL-bypassing ingest
// path (zero write-path bytes) → the healed node re-pairs as backup under
// the new epoch, byte-identical to the serving node.
TEST(HaRejoinTest, DeltaResyncConvergesWithZeroWritePathBytes) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    for (uint64_t i = 0; i < 40; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }

    sim::FaultRule cut;
    cut.probability = 1.0;
    w.inj.Arm("net.partition.sym", cut);
    // Unacked divergence on the old primary: these reach its WAL (the lease
    // is still live) but never ship — they must NOT survive reconciliation.
    for (uint64_t i = 0; i < 6; i++) {
      EXPECT_FALSE(
          pair->Put({}, TestKey(i), Value::Synthetic(9000 + i, 512)).ok());
    }
    w.env.SleepFor(2 * ro.lease_duration + 2 * ro.promote_safety_margin);
    ASSERT_TRUE(pair->fenced());
    const uint64_t frontier = pair->applied_seq();
    const uint64_t next_epoch = pair->epoch() + 1;
    ASSERT_TRUE(pair->DetachBackup().ok());

    check::FailoverReport rep;
    std::unique_ptr<core::KvaccelDB> promoted;
    ASSERT_TRUE(check::PromoteNode(db_opts, kv_opts, w.NodeB(), &w.env, &rep,
                                   &promoted, next_epoch)
                    .ok())
        << rep.first_error;
    // The serving side moves on: new keys, overwrites, deletes.
    for (uint64_t i = 100; i < 130; i++) {
      ASSERT_TRUE(
          promoted->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }
    for (uint64_t i = 0; i < 10; i += 2) {
      ASSERT_TRUE(promoted->Put({}, TestKey(i),
                                Value::Synthetic(5000 + i, 512))
                      .ok());
    }
    ASSERT_TRUE(promoted->Delete({}, TestKey(11)).ok());
    ASSERT_TRUE(promoted->Delete({}, TestKey(13)).ok());

    // Heal: depose the old primary, then close it (healed, not crashed —
    // its durable state including the unacked WAL tail is intact).
    w.inj.Disarm("net.partition.sym");
    w.env.SleepFor(5 * ro.heartbeat_period);
    ASSERT_TRUE(pair->deposed());
    ASSERT_TRUE(pair->Close().ok());
    pair.reset();

    check::RejoinOptions rj;
    rj.mode = check::ResyncMode::kDelta;
    rj.frontier = frontier;
    rj.new_epoch = next_epoch;
    check::RejoinReport rrep;
    Status rs = check::RejoinNode(db_opts, kv_opts, w.NodeA(),
                                  promoted.get(), rj, &w.env, &rrep);
    ASSERT_TRUE(rs.ok()) << rs.ToString() << " " << rrep.first_error;
    EXPECT_EQ(rrep.checker_errors, 0);
    EXPECT_EQ(rrep.fence_epoch, next_epoch);
    EXPECT_GT(rrep.resync_entries, 0u);
    EXPECT_GT(rrep.resync_bytes, 0u);
    // The delta claim: zero bytes through the rejoining node's write path,
    // strictly less than what full WAL replay would have moved.
    EXPECT_EQ(rrep.write_path_bytes, 0u);
    EXPECT_GT(rrep.wal_replay_bytes, rrep.write_path_bytes);

    // Re-pair with roles swapped: B serves, A is the rebuilt backup. Open
    // adopts the bumped durable epoch from both FENCE files.
    ASSERT_TRUE(promoted->Close().ok());
    promoted.reset();
    std::unique_ptr<core::ReplicatedKvaccelDB> pair2;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeB(), w.NodeA(), &w.env,
                                                &pair2)
                    .ok());
    EXPECT_EQ(pair2->epoch(), next_epoch);
    Value v;
    for (uint64_t i = 100; i < 130; i++) {  // post-failover writes
      ASSERT_TRUE(pair2->backup()->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v, Value::Synthetic(i, 512));
    }
    for (uint64_t i = 0; i < 6; i++) {  // doomed overwrites must be gone
      if (i == 11 || i == 13) continue;
      ASSERT_TRUE(pair2->backup()->Get({}, TestKey(i), &v).ok()) << i;
      const uint64_t seed = (i % 2 == 0) ? 5000 + i : i;
      EXPECT_EQ(v, Value::Synthetic(seed, 512)) << "key " << i;
    }
    EXPECT_TRUE(pair2->backup()->Get({}, TestKey(11), &v).IsNotFound());
    ASSERT_TRUE(pair2->Put({}, TestKey(500), Value::Synthetic(500, 512))
                    .ok());  // the rebuilt pair replicates again
    ASSERT_TRUE(pair2->Close().ok());
  });
}

// WAL-replay resync is the comparison baseline: every resync entry runs
// through the full write path, so write_path_bytes == wal_replay_bytes.
TEST(HaRejoinTest, WalReplayResyncMovesEveryByteThroughTheWritePath) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    for (uint64_t i = 0; i < 25; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }
    ASSERT_TRUE(pair->Close().ok());  // clean shutdown, nothing diverged
    pair.reset();

    // B serves alone and accumulates catch-up work for A.
    check::FailoverReport rep;
    std::unique_ptr<core::KvaccelDB> promoted;
    ASSERT_TRUE(check::PromoteNode(db_opts, kv_opts, w.NodeB(), &w.env, &rep,
                                   &promoted)
                    .ok())
        << rep.first_error;
    for (uint64_t i = 25; i < 35; i++) {
      ASSERT_TRUE(
          promoted->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }

    check::RejoinOptions rj;
    rj.mode = check::ResyncMode::kWalReplay;  // frontier: pure catch-up
    check::RejoinReport rrep;
    Status rs = check::RejoinNode(db_opts, kv_opts, w.NodeA(),
                                  promoted.get(), rj, &w.env, &rrep);
    ASSERT_TRUE(rs.ok()) << rs.ToString() << " " << rrep.first_error;
    EXPECT_EQ(rrep.checker_errors, 0);
    EXPECT_GE(rrep.resync_entries, 10u);
    EXPECT_GT(rrep.wal_replay_bytes, 0u);
    EXPECT_EQ(rrep.write_path_bytes, rrep.wal_replay_bytes);
    ASSERT_TRUE(promoted->Close().ok());
  });
}

// While a resync is in flight the serving node's scrubber defers its
// wake-ups (reconciliation reads should not compete with serving traffic).
TEST(HaRejoinTest, ServingScrubberDefersDuringResync) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    kv_opts.scrub.enabled = true;
    kv_opts.scrub.period = FromMillis(1);
    core::ReplOptions ro;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
    }
    ASSERT_TRUE(pair->Close().ok());
    pair.reset();

    check::FailoverReport rep;
    std::unique_ptr<core::KvaccelDB> promoted;
    ASSERT_TRUE(check::PromoteNode(db_opts, kv_opts, w.NodeB(), &w.env, &rep,
                                   &promoted)
                    .ok())
        << rep.first_error;
    // Enough catch-up payload that the resync link stays busy for many
    // scrub periods at the throttled rate below.
    for (uint64_t i = 100; i < 300; i++) {
      ASSERT_TRUE(
          promoted->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }

    check::RejoinOptions rj;
    rj.mode = check::ResyncMode::kDelta;
    rj.net_bytes_per_sec = 1e6;  // slow link: resync spans ~100s of periods
    check::RejoinReport rrep;
    Status rs = check::RejoinNode(db_opts, kv_opts, w.NodeA(),
                                  promoted.get(), rj, &w.env, &rrep);
    ASSERT_TRUE(rs.ok()) << rs.ToString() << " " << rrep.first_error;
    EXPECT_GT(rrep.scrub_deferred, 0u);
    ASSERT_NE(promoted->scrubber(), nullptr);
    EXPECT_GE(promoted->scrubber()->stats().deferred_for_resync,
              rrep.scrub_deferred);
    // The deferral is lifted once the rejoin completes.
    EXPECT_FALSE(promoted->scrubber()->resync_deferred());
    ASSERT_TRUE(promoted->Close().ok());
  });
}

// Satellite: the async shipper queue is bounded in bytes as well as entries.
// A saturated (slow) link blocks the shipper; producers feel backpressure,
// the byte bound holds at every sample, the backup's applied frontier only
// moves forward, and nothing is lost once the queue drains.
TEST(HaPairTest, AsyncQueueByteBoundHoldsUnderSaturatedLink) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    // A live (unpromoted) backup serves reads from its main tree only —
    // redirect intents land in its Dev-LSM mirror until promotion drains
    // them. Keep every write on the WAL stream so the direct backup reads
    // below see all of them.
    kv_opts.redirection_enabled = false;
    core::ReplOptions ro;
    ro.ack = core::ReplAck::kAsync;
    ro.async_queue_cap = 1000;        // entry bound out of the way:
    ro.async_queue_max_bytes = 1024;  // the byte bound is what binds
    ro.net_bytes_per_sec = 2e4;       // saturated: slower than the producer
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());

    // One record can land when the queue already holds max_bytes - 1.
    const uint64_t record_slack = 512;
    Nanos write_start = w.env.Now();
    sim::SimEnv::Thread* writer = w.env.Spawn("writer", [&] {
      for (uint64_t i = 0; i < 100; i++) {
        ASSERT_TRUE(
            pair->Put({}, TestKey(i), Value::Synthetic(i, 512)).ok());
      }
    });
    uint64_t last_frontier = 0;
    for (int k = 0; k < 60; k++) {
      w.env.SleepFor(FromMillis(2));
      EXPECT_LE(pair->queue_bytes(),
                ro.async_queue_max_bytes + record_slack);
      const uint64_t f = pair->applied_frontier();
      EXPECT_GE(f, last_frontier) << "applied frontier moved backwards";
      last_frontier = f;
    }
    w.env.Join(writer);
    // Backpressure is visible in the producer's clock: 100 unthrottled puts
    // take a few ms; behind a saturated link they pace at the wire rate.
    EXPECT_GT(w.env.Now() - write_start, FromMillis(100));
    pair->DrainShipping();
    EXPECT_GE(pair->applied_frontier(), last_frontier);

    const core::ReplStats st = pair->repl_stats();
    EXPECT_GE(st.async_queue_bytes_peak, ro.async_queue_max_bytes)
        << "the byte bound never engaged";
    EXPECT_LE(st.async_queue_bytes_peak,
              ro.async_queue_max_bytes + record_slack);
    EXPECT_EQ(st.lost_entries, 0u);
    EXPECT_GE(st.records_applied, 100u);
    Value v;
    for (uint64_t i = 0; i < 100; i += 17) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v, Value::Synthetic(i, 512));
    }
    ASSERT_TRUE(pair->Close().ok());
  });
}

// Duplicate delivery (net.dup) applies every record twice; exact-sequence
// application makes the second apply idempotent.
TEST(HaPairTest, DuplicateDeliveryIsIdempotent) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;  // sync
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    sim::FaultRule always;
    always.probability = 1.0;
    w.inj.Arm("net.dup", always);
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    w.inj.Disarm("net.dup");
    Value v;
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v, Value::Synthetic(i, 256));
    }
    ASSERT_TRUE(pair->Close().ok());
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GE(st.dup_records, 10u);
    EXPECT_EQ(st.lost_entries, 0u);
  });
}

// Reordered async records (net.reorder) still apply at their exact leader
// sequences, so the backup converges to the same state.
TEST(HaPairTest, ReorderedAsyncRecordsConverge) {
  PairWorld w;
  w.Run([&] {
    lsm::DbOptions db_opts = test::SmallDbOptions();
    db_opts.wal_sync = true;
    core::KvaccelOptions kv_opts = PairKvOptions();
    core::ReplOptions ro;
    ro.ack = core::ReplAck::kAsync;
    std::unique_ptr<core::ReplicatedKvaccelDB> pair;
    ASSERT_TRUE(core::ReplicatedKvaccelDB::Open(db_opts, kv_opts, ro,
                                                w.NodeA(), w.NodeB(), &w.env,
                                                &pair)
                    .ok());
    sim::FaultRule always;
    always.probability = 1.0;
    w.inj.Arm("net.reorder", always);
    pair->PauseShipping(true);  // queue a batch so there is room to swap
    for (uint64_t i = 0; i < 12; i++) {
      ASSERT_TRUE(pair->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
      // Overwrites of the same key are order-sensitive if sequences leak.
      ASSERT_TRUE(
          pair->Put({}, TestKey(i), Value::Synthetic(1000 + i, 256)).ok());
    }
    pair->PauseShipping(false);
    pair->DrainShipping();
    w.inj.Disarm("net.reorder");

    Value v;
    for (uint64_t i = 0; i < 12; i++) {
      ASSERT_TRUE(pair->backup()->Get({}, TestKey(i), &v).ok()) << i;
      EXPECT_EQ(v, Value::Synthetic(1000 + i, 256)) << "key " << i;
    }
    ASSERT_TRUE(pair->Close().ok());
    const core::ReplStats st = pair->repl_stats();
    EXPECT_GT(st.reorder_swaps, 0u);
    EXPECT_EQ(st.lost_entries, 0u);
  });
}

// ---- Partition nemesis schedules ----

// Pinned seed: cycles rotate partition kinds (sym cut with failover, ack-
// loss cut with failover, transient blip, flapping link). Every failover
// rejoins the old primary by delta resync; the harness itself asserts the
// three acceptance properties (no sync-acked write lost, no write acked by
// a fenced primary, byte-identical convergence after reconciliation).
TEST(HaNemesisTest, PartitionScheduleConvergesAndIsDeterministic) {
  check::NemesisOptions opt;
  opt.seed = 24301;
  opt.cycles = 8;
  opt.ops_per_cycle = 60;
  opt.key_space = 200;
  opt.ha = true;
  opt.net_partition = true;
  opt.repl_ack = 0;
  opt.resync_mode = 1;  // delta
  check::NemesisResult a = check::RunNemesis(opt);
  ASSERT_TRUE(a.ok) << "seed=" << opt.seed << " cycle=" << a.cycles_run
                    << ": " << a.error;
  EXPECT_EQ(a.failovers, 4);  // kinds 0 and 1, two rounds each
  EXPECT_EQ(a.rejoins, 4);
  EXPECT_GE(a.partitions, 6);
  EXPECT_GT(a.ha_fenced_rejects, 0u);
  EXPECT_EQ(a.ha_lost_entries, 0u) << "sync acks must never lose";
  // Delta resync: zero bytes through the rejoining node's write path, and
  // strictly cheaper than WAL replay whenever anything was shipped.
  EXPECT_EQ(a.ha_write_path_bytes, 0u);
  if (a.ha_resync_entries > 0) {
    EXPECT_GT(a.ha_wal_replay_bytes, a.ha_write_path_bytes);
  }

  check::NemesisResult b = check::RunNemesis(opt);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.trace, b.trace) << "nondeterministic partition schedule";
}

// WAL-replay mode is the measurable baseline the delta claim is made
// against: the same schedule must also converge with the full write path.
TEST(HaNemesisTest, PartitionScheduleConvergesUnderWalReplayResync) {
  check::NemesisOptions opt;
  opt.seed = 777;
  opt.cycles = 4;
  opt.ops_per_cycle = 60;
  opt.key_space = 200;
  opt.ha = true;
  opt.net_partition = true;
  opt.repl_ack = 0;
  opt.resync_mode = 0;  // wal replay
  check::NemesisResult r = check::RunNemesis(opt);
  ASSERT_TRUE(r.ok) << "seed=" << opt.seed << " cycle=" << r.cycles_run
                    << ": " << r.error;
  EXPECT_EQ(r.failovers, 2);
  EXPECT_EQ(r.rejoins, 2);
  // WAL replay moves every resync byte through the write path.
  EXPECT_EQ(r.ha_write_path_bytes, r.ha_wal_replay_bytes);
}

TEST(HaNemesisTest, PartitionTraceHeaderRoundTrips) {
  check::NemesisOptions opt;
  opt.seed = 7;
  opt.cycles = 2;
  opt.ops_per_cycle = 40;
  opt.key_space = 100;
  opt.ha = true;
  opt.net_partition = true;
  opt.repl_ack = 0;
  opt.resync_mode = 0;
  opt.trace_dump_dir = ::testing::TempDir() + "ha_partition_trace_dump";
  opt.corrupt_model_at_cycle = 1;  // force a divergence so the trace dumps
  check::NemesisResult r = check::RunNemesis(opt);
  ASSERT_FALSE(r.ok);
  ASSERT_FALSE(r.trace_path.empty());
  check::NemesisOptions parsed;
  ASSERT_TRUE(check::ParseNemesisTrace(r.trace_path, &parsed).ok());
  EXPECT_TRUE(parsed.ha);
  EXPECT_TRUE(parsed.net_partition);
  EXPECT_EQ(parsed.resync_mode, 0);
  EXPECT_EQ(parsed.seed, 7u);
}

TEST(HaNemesisTest, TraceHeaderRoundTripsHaFields) {
  check::NemesisOptions opt;
  opt.seed = 7;
  opt.cycles = 2;
  opt.ha = true;
  opt.repl_ack = 1;
  opt.trace_dump_dir = ::testing::TempDir() + "ha_trace_dump";
  opt.corrupt_model_at_cycle = 1;  // force a divergence so the trace dumps
  check::NemesisResult r = check::RunNemesis(opt);
  ASSERT_FALSE(r.ok);
  ASSERT_FALSE(r.trace_path.empty());
  check::NemesisOptions parsed;
  ASSERT_TRUE(check::ParseNemesisTrace(r.trace_path, &parsed).ok());
  EXPECT_TRUE(parsed.ha);
  EXPECT_EQ(parsed.repl_ack, 1);
  EXPECT_EQ(parsed.seed, 7u);
}

}  // namespace
}  // namespace kvaccel
