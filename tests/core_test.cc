#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/kvaccel_db.h"
#include "tests/test_util.h"

namespace kvaccel::core {
namespace {

using test::SimWorld;
using test::TestKey;

KvaccelOptions SmallKvOptions() {
  KvaccelOptions o;
  o.dev.memtable_bytes = 128 << 10;
  o.dev.dma_chunk = 64 << 10;
  o.rollback = RollbackScheme::kDisabled;  // tests trigger rollback manually
  return o;
}

TEST(KvaccelDbTest, NormalPathPutGet) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(KvaccelDB::Open(test::SmallDbOptions(), SmallKvOptions(),
                                world.MakeDbEnv(), &db)
                    .ok());
    ASSERT_TRUE(db->Put({}, "k", Value::Inline("v")).ok());
    Value v;
    ASSERT_TRUE(db->Get({}, "k", &v).ok());
    EXPECT_EQ(v.Materialize(), "v");
    EXPECT_EQ(db->kv_stats().direct_writes, 1u);
    EXPECT_EQ(db->kv_stats().redirected_writes, 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

// Forces the redirection path by stuffing Main-LSM until the Detector sees
// an imminent stall, then checks read-your-writes across both paths.
TEST(KvaccelDbTest, RedirectionDuringStallPreservesReads) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);  // react fast at test scale
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());

    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i % 500),
                          Value::Synthetic(static_cast<uint64_t>(i), 4096))
                      .ok());
    }
    // Sustained pressure must have redirected part of the stream.
    EXPECT_GT(db->kv_stats().redirected_writes, 0u);
    EXPECT_GT(db->kv_stats().direct_writes, 0u);
    EXPECT_GT(db->kv_stats().detector_checks, 0u);

    // Read-your-writes: the newest version of every key, wherever it lives.
    Value v;
    for (int k = 0; k < 500; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(2500 + k)) << k;
    }
    EXPECT_GT(db->kv_stats().dev_reads + db->kv_stats().main_reads, 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, RollbackDrainsDeviceAndPreservesData) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i % 500), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_GT(db->kv_stats().redirected_writes, 0u);
    ASSERT_FALSE(db->dev()->Empty());

    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    ASSERT_TRUE(db->RollbackNow().ok());
    EXPECT_TRUE(db->dev()->Empty());
    EXPECT_EQ(db->metadata()->Size(), 0u);
    EXPECT_EQ(db->kv_stats().rollbacks, 1u);
    EXPECT_GT(db->kv_stats().rollback_entries, 0u);

    // All newest versions now come from Main-LSM.
    Value v;
    for (int k = 0; k < 500; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(2500 + k)) << k;
    }
    EXPECT_EQ(db->kv_stats().dev_reads, 0u);  // reads after rollback: main
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, DeleteRedirectedAsTombstone) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    // Seed some stable data.
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    // Build stall pressure, then delete seeded keys mid-pressure.
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(1000 + i), Value::Synthetic(i, 4096)).ok());
      if (i % 40 == 0 && i / 40 < 100) {
        ASSERT_TRUE(db->Delete({}, TestKey(i / 40)).ok());
      }
    }
    // Deleted keys are gone regardless of which path served the delete.
    Value v;
    for (int k = 0; k < 50; k++) {
      EXPECT_TRUE(db->Get({}, TestKey(k), &v).IsNotFound()) << k;
    }
    // And stay gone after rollback.
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    ASSERT_TRUE(db->RollbackNow().ok());
    for (int k = 0; k < 50; k++) {
      EXPECT_TRUE(db->Get({}, TestKey(k), &v).IsNotFound()) << k;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, OverwriteOnMainPathInvalidatesDevCopy) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    // Build pressure so some "hot" keys get redirected.
    for (int i = 0; i < 2500; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i % 300), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_GT(db->metadata()->Size(), 0u);
    // Let pressure subside, then overwrite everything on the normal path.
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    db->detector()->PollNow();
    for (int k = 0; k < 300; k++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(k), Value::Synthetic(100000 + k, 64)).ok());
    }
    // Paper write path (3-1): records now point at Main-LSM.
    Value v;
    for (int k = 0; k < 300; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(100000 + k)) << k;
    }
    // Rollback must NOT resurrect the stale device copies.
    ASSERT_TRUE(db->RollbackNow().ok());
    for (int k = 0; k < 300; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), static_cast<uint64_t>(100000 + k)) << k;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, HybridIteratorMergesBothSides) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    KvaccelOptions kv_opts = SmallKvOptions();
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    // Even keys via the normal path.
    for (int i = 0; i < 100; i += 2) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    // Odd keys planted directly in the Dev-LSM (as a redirection would).
    for (int i = 1; i < 100; i += 2) {
      ASSERT_TRUE(db->dev()->Put(TestKey(i), Value::Synthetic(i, 256)).ok());
      db->metadata()->Insert(TestKey(i), 1000000 + i);
    }
    // Overlap: key 10 newest in dev, key 12 newest in main.
    ASSERT_TRUE(db->dev()->Put(TestKey(10), Value::Synthetic(777, 256)).ok());
    db->metadata()->Insert(TestKey(10), 2000000);
    ASSERT_TRUE(db->dev()->Put(TestKey(12), Value::Synthetic(888, 256)).ok());
    // (12 not in metadata: main is newest)
    // Dev tombstone hides key 14 entirely.
    ASSERT_TRUE(db->dev()->Delete(TestKey(14)).ok());
    db->metadata()->Insert(TestKey(14), 2000001);

    auto it = db->NewIterator({});
    std::vector<std::string> keys;
    uint64_t seed10 = 0, seed12 = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      keys.push_back(it->key().ToString());
      Value v = Value::DecodeOrDie(it->value());
      if (it->key().ToString() == TestKey(10)) seed10 = v.seed();
      if (it->key().ToString() == TestKey(12)) seed12 = v.seed();
    }
    EXPECT_EQ(keys.size(), 99u);  // 100 keys minus tombstoned 14
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(seed10, 777u);  // metadata says dev is newest
    EXPECT_EQ(seed12, 12u);   // metadata says main is newest
    for (const auto& k : keys) EXPECT_NE(k, TestKey(14));

    // Seek into the middle.
    it->Seek(TestKey(50));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), TestKey(50));
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, HybridIteratorSurvivesRollbackMidScan) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.rollback = RollbackScheme::kDisabled;
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    // Even keys host-side; odd keys device-side with proper host sequence
    // numbers and metadata records, exactly as redirection leaves them.
    for (int i = 0; i < 100; i += 2) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 256)).ok());
    }
    for (int i = 1; i < 100; i += 2) {
      uint64_t seq = db->main()->AllocateSequence(1);
      ASSERT_TRUE(
          db->dev()->Put(TestKey(i), Value::Synthetic(i, 256), seq).ok());
      db->metadata()->Insert(TestKey(i), seq);
    }

    // Open the iterator, scan a quarter, then let a full rollback drain and
    // reset the Dev-LSM underneath it. Both the device's merged view and the
    // metadata key set were pinned at open, so the scan must keep producing
    // every key in order — nothing may vanish or flip sides mid-scan.
    auto it = db->NewIterator({});
    it->SeekToFirst();
    std::vector<std::string> keys;
    for (int i = 0; i < 25; i++) {
      ASSERT_TRUE(it->Valid());
      keys.push_back(it->key().ToString());
      it->Next();
    }
    ASSERT_TRUE(db->RollbackNow().ok());
    EXPECT_TRUE(db->dev()->Empty());  // rollback really did reset the device
    for (; it->Valid(); it->Next()) {
      keys.push_back(it->key().ToString());
      Value v = Value::DecodeOrDie(it->value());
      uint64_t n = strtoull(it->key().ToString().c_str() + 3, nullptr, 10);
      EXPECT_EQ(v.seed(), n) << it->key().ToString();
    }
    ASSERT_EQ(keys.size(), 100u) << "keys vanished across the rollback";
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    for (int i = 0; i < 100; i++) EXPECT_EQ(keys[i], TestKey(i));

    // A fresh iterator sees the post-rollback world: same 100 keys, now all
    // host-side.
    auto it2 = db->NewIterator({});
    int count = 0;
    for (it2->SeekToFirst(); it2->Valid(); it2->Next()) count++;
    EXPECT_EQ(count, 100);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, CrashRecoveryRebuildsConsistency) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 2500; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i % 400), Value::Synthetic(i, 4096)).ok());
    }
    ASSERT_GT(db->metadata()->Size(), 0u);
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());

    // Lose the volatile hash table; recover by full rollback (paper §VI-D).
    Nanos recovery = 0;
    ASSERT_TRUE(db->CrashMetadataAndRecover(&recovery).ok());
    EXPECT_GT(recovery, 0u);
    EXPECT_TRUE(db->dev()->Empty());
    EXPECT_EQ(db->metadata()->Size(), 0u);
    Value v;
    for (int k = 0; k < 400; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      // Last write of key k among i = 0..2499 with i % 400 == k.
      uint64_t expect = (k < 100) ? (2400 + k) : (2000 + k);
      EXPECT_EQ(v.seed(), expect) << k;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, EagerRollbackRunsAutomatically) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 2;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    kv_opts.rollback = RollbackScheme::kEager;
    kv_opts.eager_calm_periods = 2;
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i % 500), Value::Synthetic(i, 4096)).ok());
    }
    // Give the background managers idle time to drain the device.
    ASSERT_TRUE(db->WaitForCompactionIdle().ok());
    world.env.SleepFor(FromSecs(2));
    EXPECT_TRUE(db->dev()->Empty());
    EXPECT_GT(db->kv_stats().rollbacks, 0u);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, MetadataCostsMatchTableVI) {
  SimWorld world;
  world.Run([&] {
    KvaccelOptions opts = SmallKvOptions();
    KvaccelStats stats;
    MetadataManager md(&world.env, world.host_cpu.get(), opts, &stats);
    Nanos t0 = world.env.Now();
    md.Insert("key1", 7);
    EXPECT_EQ(world.env.Now() - t0, 450u);  // 0.45 us
    t0 = world.env.Now();
    EXPECT_TRUE(md.Check("key1"));
    EXPECT_EQ(world.env.Now() - t0, 200u);  // 0.20 us
    t0 = world.env.Now();
    md.Delete("key1");
    EXPECT_EQ(world.env.Now() - t0, 280u);  // 0.28 us
    EXPECT_FALSE(md.Check("key1"));
    EXPECT_EQ(stats.md_inserts, 1u);
    EXPECT_EQ(stats.md_checks, 2u);
    EXPECT_EQ(stats.md_deletes, 1u);
  });
}

// Concurrent writers coalesce through the Main-LSM writer queue: the total
// op count and the sequence space stay exact, while the number of commit
// groups drops below the number of writes.
TEST(KvaccelDbTest, MultiWriterGroupCommit) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.redirection_enabled = false;  // every write takes the writer queue
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());

    constexpr int kWriters = 4;
    constexpr int kWritesPerWriter = 400;
    std::vector<sim::SimEnv::Thread*> writers;
    for (int t = 0; t < kWriters; t++) {
      writers.push_back(world.env.Spawn("writer" + std::to_string(t), [&, t] {
        for (int i = 0; i < kWritesPerWriter; i++) {
          uint64_t k = static_cast<uint64_t>(t) * kWritesPerWriter + i;
          ASSERT_TRUE(db->Put({}, TestKey(k), Value::Synthetic(k, 4096)).ok());
        }
      }));
    }
    for (auto* w : writers) world.env.Join(w);

    const uint64_t total = uint64_t{kWriters} * kWritesPerWriter;
    EXPECT_EQ(db->stats().writes_total, total);
    const lsm::DbStats& ms = db->main()->stats();
    EXPECT_EQ(ms.writes_total, total);
    // Coalescing happened: fewer groups than writes, groups cover every entry.
    EXPECT_GT(ms.write_groups, 0u);
    EXPECT_LT(ms.write_groups, total);
    EXPECT_EQ(ms.group_commit_size.Count(), ms.write_groups);
    EXPECT_GT(ms.group_commit_size.Max(), 1u);
    uint64_t grouped_entries = static_cast<uint64_t>(
        ms.group_commit_size.Average() *
            static_cast<double>(ms.group_commit_size.Count()) +
        0.5);
    EXPECT_EQ(grouped_entries, total);
    // Sequence space is gapless: exactly `total` numbers were consumed.
    EXPECT_EQ(db->main()->AllocateSequence(1), total + 1);

    // Every writer's data survived the shared commits.
    Value v;
    for (uint64_t k = 0; k < total; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), k) << k;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

// A rollback racing concurrent batched writes must neither lose writes nor
// resurrect stale device copies: the newest version of every key wins,
// whichever path served it and whenever the drain happened.
TEST(KvaccelDbTest, RollbackDuringConcurrentBatchWrites) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.detector_period = FromMillis(1);
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());

    // Build stall pressure so the device holds data worth rolling back.
    std::vector<uint64_t> latest(250);
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(
          db->Put({}, TestKey(i % 250), Value::Synthetic(i, 4096)).ok());
      latest[i % 250] = static_cast<uint64_t>(i);
    }
    ASSERT_GT(db->kv_stats().redirected_writes, 0u);
    ASSERT_FALSE(db->dev()->Empty());

    // One actor streams 8-entry batches while the rollback drains the device.
    constexpr int kBatches = 60;
    constexpr int kBatchSize = 8;
    auto* writer = world.env.Spawn("batch-writer", [&] {
      uint64_t seed = 100000;
      for (int b = 0; b < kBatches; b++) {
        lsm::WriteBatch batch;
        for (int j = 0; j < kBatchSize; j++) {
          int k = (b * kBatchSize + j) % 250;
          batch.Put(TestKey(k), Value::Synthetic(seed, 64));
          latest[k] = seed++;
        }
        ASSERT_TRUE(db->Write({}, &batch).ok());
      }
    });
    ASSERT_TRUE(db->RollbackNow().ok());
    world.env.Join(writer);

    EXPECT_GE(db->kv_stats().rollbacks, 1u);
    Value v;
    for (int k = 0; k < 250; k++) {
      ASSERT_TRUE(db->Get({}, TestKey(k), &v).ok()) << k;
      EXPECT_EQ(v.seed(), latest[k]) << k;
    }
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(KvaccelDbTest, NoRedirectionWhenDisabled) {
  SimWorld world;
  world.Run([&] {
    lsm::DbOptions main_opts = test::SmallDbOptions();
    main_opts.compaction_threads = 1;
    KvaccelOptions kv_opts = SmallKvOptions();
    kv_opts.redirection_enabled = false;
    kv_opts.detector_period = FromMillis(1);
    std::unique_ptr<KvaccelDB> db;
    ASSERT_TRUE(
        KvaccelDB::Open(main_opts, kv_opts, world.MakeDbEnv(), &db).ok());
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(i), Value::Synthetic(i, 4096)).ok());
    }
    EXPECT_EQ(db->kv_stats().redirected_writes, 0u);
    EXPECT_TRUE(db->dev()->Empty());
    ASSERT_TRUE(db->Close().ok());
  });
}

}  // namespace
}  // namespace kvaccel::core
