#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "lsm/version.h"
#include "lsm/wal.h"
#include "tests/test_util.h"

namespace kvaccel::lsm {
namespace {

using test::SimWorld;

std::string IKey(const std::string& ukey, SequenceNumber seq) {
  std::string out;
  AppendInternalKey(&out, ukey, seq, ValueType::kValue);
  return out;
}

FileMetaPtr File(uint64_t number, const std::string& smallest,
                 const std::string& largest, uint64_t size = 1 << 20) {
  auto f = std::make_shared<FileMetaData>();
  f->number = number;
  f->smallest = IKey(smallest, 100);
  f->largest = IKey(largest, 1);
  f->logical_size = size;
  f->num_entries = 10;
  return f;
}

TEST(VersionEditTest, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.SetLogNumber(7);
  edit.SetNextFileNumber(42);
  edit.SetLastSequence(99999);
  edit.AddFile(0, File(10, "aaa", "mmm"));
  edit.AddFile(3, File(11, "nnn", "zzz", 123456));
  edit.DeleteFile(1, 5);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(VersionEdit::DecodeFrom(encoded, &decoded).ok());
  ASSERT_EQ(decoded.added().size(), 2u);
  EXPECT_EQ(decoded.added()[0].first, 0);
  EXPECT_EQ(decoded.added()[0].second->number, 10u);
  EXPECT_EQ(decoded.added()[1].second->logical_size, 123456u);
  ASSERT_EQ(decoded.deleted().size(), 1u);
  EXPECT_EQ(decoded.deleted()[0], (std::pair<int, uint64_t>{1, 5}));
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_TRUE(VersionEdit::DecodeFrom(Slice("\xff\xff junk"), &edit)
                  .IsCorruption());
}

class VersionSetTest : public ::testing::Test {
 protected:
  VersionSetTest() : world_(), options_(test::SmallDbOptions()) {}

  // Runs `body` inside the sim with a fresh VersionSet.
  void Run(std::function<void(VersionSet&)> body) {
    world_.Run([&] {
      VersionSet vs(options_, world_.fs.get());
      ASSERT_TRUE(vs.Create().ok());
      body(vs);
      vs.CloseManifest();
    });
  }

  test::SimWorld world_;
  DbOptions options_;
};

TEST_F(VersionSetTest, ApplyAddsAndSortsFiles) {
  Run([&](VersionSet& vs) {
    VersionEdit e1;
    e1.AddFile(1, File(3, "ccc", "ddd"));
    e1.AddFile(1, File(2, "aaa", "bbb"));
    e1.AddFile(0, File(4, "aaa", "zzz"));
    e1.AddFile(0, File(5, "aaa", "zzz"));
    ASSERT_TRUE(vs.LogAndApply(&e1).ok());
    auto v = vs.current();
    // L0 newest (highest number) first.
    ASSERT_EQ(v->NumLevelFiles(0), 2);
    EXPECT_EQ(v->files(0)[0]->number, 5u);
    // L1 sorted by smallest key.
    ASSERT_EQ(v->NumLevelFiles(1), 2);
    EXPECT_EQ(v->files(1)[0]->number, 2u);
    EXPECT_EQ(v->LevelBytes(1), 2u << 20);
  });
}

TEST_F(VersionSetTest, DeleteRemovesFiles) {
  Run([&](VersionSet& vs) {
    VersionEdit e1;
    e1.AddFile(1, File(2, "aaa", "bbb"));
    ASSERT_TRUE(vs.LogAndApply(&e1).ok());
    VersionEdit e2;
    e2.DeleteFile(1, 2);
    ASSERT_TRUE(vs.LogAndApply(&e2).ok());
    EXPECT_EQ(vs.current()->NumLevelFiles(1), 0);
  });
}

TEST_F(VersionSetTest, OverlappingInputs) {
  Run([&](VersionSet& vs) {
    VersionEdit e;
    e.AddFile(1, File(2, "aaa", "ccc"));
    e.AddFile(1, File(3, "ddd", "fff"));
    e.AddFile(1, File(4, "ggg", "iii"));
    ASSERT_TRUE(vs.LogAndApply(&e).ok());
    auto v = vs.current();
    auto overlap = v->OverlappingInputs(1, IKey("bbb", 50), IKey("eee", 50));
    ASSERT_EQ(overlap.size(), 2u);
    EXPECT_EQ(overlap[0]->number, 2u);
    EXPECT_EQ(overlap[1]->number, 3u);
    EXPECT_TRUE(v->OverlappingInputs(1, IKey("jjj", 1), IKey("kkk", 1))
                    .empty());
  });
}

TEST_F(VersionSetTest, ForEachOverlappingProbesL0NewestFirstThenLevels) {
  Run([&](VersionSet& vs) {
    VersionEdit e;
    e.AddFile(0, File(10, "aaa", "zzz"));
    e.AddFile(0, File(11, "aaa", "zzz"));
    e.AddFile(1, File(5, "kkk", "mmm"));
    e.AddFile(2, File(6, "aaa", "zzz"));
    ASSERT_TRUE(vs.LogAndApply(&e).ok());
    std::vector<uint64_t> probed;
    vs.current()->ForEachOverlapping(
        Slice("lll"), [&](int, const FileMetaPtr& f) {
          probed.push_back(f->number);
          return true;
        });
    // L0 newest first (11, 10), then L1 (5), then L2 (6).
    EXPECT_EQ(probed, (std::vector<uint64_t>{11, 10, 5, 6}));
  });
}

TEST_F(VersionSetTest, ScoresAndPendingBytes) {
  Run([&](VersionSet& vs) {
    // Empty: no compaction wanted.
    EXPECT_LT(vs.MaxCompactionScore(nullptr), 1.0);
    VersionEdit e;
    for (int i = 0; i < options_.l0_compaction_trigger + 1; i++) {
      e.AddFile(0, File(10 + i, "aaa", "zzz"));
    }
    ASSERT_TRUE(vs.LogAndApply(&e).ok());
    int level = -1;
    EXPECT_GE(vs.MaxCompactionScore(&level), 1.0);
    EXPECT_EQ(level, 0);
    EXPECT_GT(vs.EstimatedPendingCompactionBytes(), 0u);
  });
}

TEST_F(VersionSetTest, PickCompactionL0TakesAllAndSerializes) {
  Run([&](VersionSet& vs) {
    VersionEdit e;
    for (int i = 0; i < 4; i++) e.AddFile(0, File(10 + i, "aaa", "zzz"));
    e.AddFile(1, File(20, "bbb", "ccc"));
    ASSERT_TRUE(vs.LogAndApply(&e).ok());

    auto c = vs.PickCompaction();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->level, 0);
    EXPECT_EQ(c->inputs[0].size(), 4u);
    EXPECT_EQ(c->inputs[1].size(), 1u);  // overlapping L1 file dragged in
    EXPECT_TRUE(c->inputs[0][0]->being_compacted);

    // Second pick must refuse: L0->L1 is serialized.
    EXPECT_EQ(vs.PickCompaction(), nullptr);
    c->MarkBeingCompacted(false);
  });
}

TEST_F(VersionSetTest, PickCompactionSkipsBusyDeepFiles) {
  Run([&](VersionSet& vs) {
    DbOptions small = options_;
    VersionEdit e;
    // L1 over its byte budget (base is 1 MiB in SmallDbOptions).
    e.AddFile(1, File(2, "aaa", "ccc", 1 << 20));
    e.AddFile(1, File(3, "ddd", "fff", 1 << 20));
    ASSERT_TRUE(vs.LogAndApply(&e).ok());
    auto c1 = vs.PickCompaction();
    ASSERT_NE(c1, nullptr);
    EXPECT_EQ(c1->level, 1);
    ASSERT_EQ(c1->inputs[0].size(), 1u);
    // Second pick takes the *other* L1 file (round-robin, not busy).
    auto c2 = vs.PickCompaction();
    if (c2 != nullptr) {
      EXPECT_NE(c2->inputs[0][0]->number, c1->inputs[0][0]->number);
      c2->MarkBeingCompacted(false);
    }
    c1->MarkBeingCompacted(false);
  });
}

TEST_F(VersionSetTest, MaxBytesForLevelGrowsByMultiplier) {
  Run([&](VersionSet& vs) {
    uint64_t l1 = vs.MaxBytesForLevel(1);
    uint64_t l2 = vs.MaxBytesForLevel(2);
    uint64_t l3 = vs.MaxBytesForLevel(3);
    EXPECT_EQ(l1, options_.max_bytes_for_level_base);
    EXPECT_NEAR(static_cast<double>(l2) / l1,
                options_.max_bytes_for_level_multiplier, 0.01);
    EXPECT_NEAR(static_cast<double>(l3) / l2,
                options_.max_bytes_for_level_multiplier, 0.01);
  });
}

// ---------------- Priority compaction scheduler ----------------

TEST_F(VersionSetTest, PickCompactionPrefersL0OverHigherScoringDeepLevel) {
  Run([&](VersionSet& vs) {
    VersionEdit e;
    // L0 at its trigger (SmallDbOptions: 4 files) ...
    e.AddFile(0, File(10, "aaa", "zzz"));
    e.AddFile(0, File(11, "aaa", "zzz"));
    e.AddFile(0, File(12, "aaa", "zzz"));
    e.AddFile(0, File(13, "aaa", "zzz"));
    // ... while L1 holds 5x its 1 MB budget — FIFO or pure score order
    // would drain L1 first and let L0 depth stall writers.
    for (int i = 0; i < 5; i++) {
      std::string lo(1, static_cast<char>('b' + 2 * i));
      std::string hi(1, static_cast<char>('c' + 2 * i));
      e.AddFile(1, File(20 + i, lo, hi, 1 << 20));
    }
    ASSERT_TRUE(vs.LogAndApply(&e).ok());

    auto c = vs.PickCompaction();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->level, 0);
    EXPECT_EQ(c->output_level, 1);
    EXPECT_FALSE(c->is_intra_l0);
    EXPECT_EQ(c->inputs[0].size(), 4u);
  });
}

TEST_F(VersionSetTest, PickCompactionIntraL0WhenL0ToL1Busy) {
  Run([&](VersionSet& vs) {
    VersionEdit e1;
    for (int i = 0; i < 4; i++) e1.AddFile(0, File(10 + i, "aaa", "zzz"));
    ASSERT_TRUE(vs.LogAndApply(&e1).ok());

    // The L0->L1 job takes the current four files and marks them busy.
    auto running = vs.PickCompaction();
    ASSERT_NE(running, nullptr);
    EXPECT_EQ(running->level, 0);
    EXPECT_FALSE(running->is_intra_l0);

    // While it runs, flushes keep landing. Below the slowdown trigger
    // (SmallDbOptions: 8) intra-L0 is wasted write amp, so nothing runs.
    VersionEdit e2;
    for (int i = 0; i < 3; i++) e2.AddFile(0, File(20 + i, "aaa", "zzz"));
    ASSERT_TRUE(vs.LogAndApply(&e2).ok());
    EXPECT_EQ(vs.PickCompaction(), nullptr);

    // One more flush crosses the trigger: the idle files merge among
    // themselves (intra-L0) instead of waiting behind the busy job.
    VersionEdit e3;
    e3.AddFile(0, File(23, "aaa", "zzz"));
    ASSERT_TRUE(vs.LogAndApply(&e3).ok());
    auto relief = vs.PickCompaction();
    ASSERT_NE(relief, nullptr);
    EXPECT_TRUE(relief->is_intra_l0);
    EXPECT_EQ(relief->level, 0);
    EXPECT_EQ(relief->output_level, 0);
    EXPECT_EQ(relief->inputs[0].size(), 4u);  // only the non-busy files
    EXPECT_TRUE(relief->inputs[1].empty());
  });
}

TEST_F(VersionSetTest, PickCompactionWithholdsDeepJobsWhenAsked) {
  Run([&](VersionSet& vs) {
    VersionEdit e;
    e.AddFile(1, File(20, "bbb", "ccc", 2 << 20));  // 2x the L1 budget
    ASSERT_TRUE(vs.LogAndApply(&e).ok());

    // allow_deep=false is the worker loop reserving its last slot for L0.
    EXPECT_EQ(vs.PickCompaction(/*allow_deep=*/false), nullptr);
    auto c = vs.PickCompaction(/*allow_deep=*/true);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->level, 1);
    EXPECT_EQ(c->output_level, 2);
  });
}

TEST_F(VersionSetTest, PickCompactionRanksDeepLevelsByScore) {
  Run([&](VersionSet& vs) {
    VersionEdit e;
    // L1 at 2x its budget, L2 at 3x (base 1 MB, multiplier 10 -> 10 MB):
    // the more oversubscribed level must drain first.
    e.AddFile(1, File(20, "bbb", "ccc", 2 << 20));
    for (int i = 0; i < 3; i++) {
      std::string lo(1, static_cast<char>('d' + 2 * i));
      std::string hi(1, static_cast<char>('e' + 2 * i));
      e.AddFile(2, File(30 + i, lo, hi, 10 << 20));
    }
    ASSERT_TRUE(vs.LogAndApply(&e).ok());

    auto c = vs.PickCompaction();
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->level, 2);
  });
}

TEST_F(VersionSetTest, CompactionQueueDepthCountsRunnableLevels) {
  Run([&](VersionSet& vs) {
    EXPECT_EQ(vs.CompactionQueueDepth(), 0);
    VersionEdit e;
    for (int i = 0; i < 4; i++) e.AddFile(0, File(10 + i, "aaa", "zzz"));
    e.AddFile(1, File(20, "bbb", "ccc", 2 << 20));
    e.AddFile(2, File(30, "ddd", "eee", 11 << 20));
    ASSERT_TRUE(vs.LogAndApply(&e).ok());
    EXPECT_EQ(vs.CompactionQueueDepth(), 3);
  });
}

TEST_F(VersionSetTest, RecoverRestoresState) {
  world_.Run([&] {
    {
      VersionSet vs(options_, world_.fs.get());
      ASSERT_TRUE(vs.Create().ok());
      vs.SetLastSequence(1234);
      VersionEdit e;
      e.AddFile(2, File(9, "mmm", "nnn", 777));
      ASSERT_TRUE(vs.LogAndApply(&e).ok());
      ASSERT_TRUE(vs.CloseManifest().ok());
    }
    {
      VersionSet vs(options_, world_.fs.get());
      ASSERT_TRUE(vs.Recover().ok());
      EXPECT_EQ(vs.current()->NumLevelFiles(2), 1);
      EXPECT_EQ(vs.current()->files(2)[0]->number, 9u);
      EXPECT_EQ(vs.current()->files(2)[0]->logical_size, 777u);
      EXPECT_EQ(vs.last_sequence(), 1234u);
      ASSERT_TRUE(vs.CloseManifest().ok());
    }
  });
}

}  // namespace
}  // namespace kvaccel::lsm
