#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lsm/sst.h"
#include "lsm/wal.h"
#include "tests/test_util.h"

namespace kvaccel::lsm {
namespace {

using test::SimWorld;

std::string IKey(const std::string& ukey, SequenceNumber seq,
                 ValueType type = ValueType::kValue) {
  std::string out;
  AppendInternalKey(&out, ukey, seq, type);
  return out;
}

std::string EncValue(const Value& v) {
  std::string out;
  v.EncodeTo(&out);
  return out;
}

// Builds an SST with `n` keys key000000..key(n-1), value "val<i>".
void BuildTable(SimWorld& world, const DbOptions& opts,
                const std::string& name, int n) {
  std::unique_ptr<fs::WritableFile> file;
  ASSERT_TRUE(world.fs->NewWritableFile(name, &file).ok());
  SstBuilder builder(opts, std::move(file));
  for (int i = 0; i < n; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    Value v = Value::Inline("val" + std::to_string(i));
    std::string ik = IKey(key, 100);
    ASSERT_TRUE(builder.Add(ik, EncValue(v), 8 + 8 + v.logical_size()).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
}

TEST(SstTest, BuildAndGet) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    BuildTable(world, opts, "000010.sst", 500);
    BlockCache cache(1 << 20);
    std::shared_ptr<SstReader> reader;
    ASSERT_TRUE(SstReader::Open(opts, world.fs.get(), "000010.sst", 10,
                                &cache, &reader)
                    .ok());
    EXPECT_EQ(reader->num_entries(), 500u);
    EXPECT_EQ(ExtractUserKey(reader->smallest()).ToString(), "key000000");
    EXPECT_EQ(ExtractUserKey(reader->largest()).ToString(), "key000499");

    ReadOptions ropts;
    for (int i : {0, 1, 250, 498, 499}) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      bool found = false;
      ValueType type;
      Value v;
      ASSERT_TRUE(reader
                      ->Get(ropts, IKey(key, 200), &found, &type, &v)
                      .ok());
      ASSERT_TRUE(found) << key;
      EXPECT_EQ(type, ValueType::kValue);
      EXPECT_EQ(v.Materialize(), "val" + std::to_string(i));
    }
    bool found = true;
    ValueType type;
    Value v;
    ASSERT_TRUE(
        reader->Get(ropts, IKey("nokey", 200), &found, &type, &v).ok());
    EXPECT_FALSE(found);
  });
}

TEST(SstTest, SnapshotVisibility) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    std::unique_ptr<fs::WritableFile> file;
    ASSERT_TRUE(world.fs->NewWritableFile("000011.sst", &file).ok());
    SstBuilder builder(opts, std::move(file));
    // Same user key, two versions (internal order: newest first).
    Value v2 = Value::Inline("new"), v1 = Value::Inline("old");
    ASSERT_TRUE(builder.Add(IKey("k", 20), EncValue(v2), 12).ok());
    ASSERT_TRUE(builder.Add(IKey("k", 10), EncValue(v1), 12).ok());
    ASSERT_TRUE(builder.Finish().ok());

    BlockCache cache(1 << 20);
    std::shared_ptr<SstReader> reader;
    ASSERT_TRUE(SstReader::Open(opts, world.fs.get(), "000011.sst", 11,
                                &cache, &reader)
                    .ok());
    bool found;
    ValueType type;
    Value v;
    // Snapshot at 100 sees the newest.
    ASSERT_TRUE(reader->Get({}, IKey("k", 100), &found, &type, &v).ok());
    ASSERT_TRUE(found);
    EXPECT_EQ(v.Materialize(), "new");
    // Snapshot at 15 sees the old version.
    ASSERT_TRUE(reader->Get({}, IKey("k", 15), &found, &type, &v).ok());
    ASSERT_TRUE(found);
    EXPECT_EQ(v.Materialize(), "old");
  });
}

TEST(SstTest, TombstonesSurface) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    std::unique_ptr<fs::WritableFile> file;
    ASSERT_TRUE(world.fs->NewWritableFile("000012.sst", &file).ok());
    SstBuilder builder(opts, std::move(file));
    ASSERT_TRUE(
        builder.Add(IKey("gone", 5, ValueType::kDeletion), "", 12).ok());
    ASSERT_TRUE(builder.Finish().ok());

    BlockCache cache(1 << 20);
    std::shared_ptr<SstReader> reader;
    ASSERT_TRUE(SstReader::Open(opts, world.fs.get(), "000012.sst", 12,
                                &cache, &reader)
                    .ok());
    bool found;
    ValueType type;
    Value v;
    ASSERT_TRUE(reader->Get({}, IKey("gone", 100), &found, &type, &v).ok());
    ASSERT_TRUE(found);
    EXPECT_EQ(type, ValueType::kDeletion);
  });
}

TEST(SstTest, IteratorFullScanAndSeek) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    BuildTable(world, opts, "000013.sst", 300);
    BlockCache cache(1 << 20);
    std::shared_ptr<SstReader> reader;
    ASSERT_TRUE(SstReader::Open(opts, world.fs.get(), "000013.sst", 13,
                                &cache, &reader)
                    .ok());
    auto it = reader->NewIterator({});
    int count = 0;
    std::string prev;
    InternalKeyComparator cmp;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      if (!prev.empty()) {
        EXPECT_LT(cmp.Compare(Slice(prev), it->key()), 0);
      }
      prev = it->key().ToString();
      count++;
    }
    EXPECT_TRUE(it->status().ok());
    EXPECT_EQ(count, 300);

    it->Seek(IKey("key000150", kMaxSequenceNumber));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "key000150");
    it->Seek(IKey("key000299zzz", kMaxSequenceNumber));
    EXPECT_FALSE(it->Valid());
  });
}

TEST(SstTest, BlockCacheAvoidsSecondRead) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    BuildTable(world, opts, "000014.sst", 100);
    BlockCache cache(4 << 20);
    std::shared_ptr<SstReader> reader;
    ASSERT_TRUE(SstReader::Open(opts, world.fs.get(), "000014.sst", 14,
                                &cache, &reader)
                    .ok());
    bool found;
    ValueType type;
    Value v;
    ASSERT_TRUE(
        reader->Get({}, IKey("key000050", 200), &found, &type, &v).ok());
    uint64_t nand_after_first = world.ssd->nand().bytes_read();
    ASSERT_TRUE(
        reader->Get({}, IKey("key000050", 200), &found, &type, &v).ok());
    // Second read of the same block comes from cache: no new device reads.
    EXPECT_EQ(world.ssd->nand().bytes_read(), nand_after_first);
  });
}

TEST(SstTest, BloomSkipsDeviceForAbsentKeys) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    BuildTable(world, opts, "000015.sst", 1000);
    BlockCache cache(1 << 20);
    std::shared_ptr<SstReader> reader;
    ASSERT_TRUE(SstReader::Open(opts, world.fs.get(), "000015.sst", 15,
                                &cache, &reader)
                    .ok());
    uint64_t base = world.ssd->nand().bytes_read();
    int device_touches = 0;
    for (int i = 0; i < 200; i++) {
      bool found;
      ValueType type;
      Value v;
      std::string absent = "zzz" + std::to_string(i);
      ASSERT_TRUE(
          reader->Get({}, IKey(absent, 200), &found, &type, &v).ok());
      EXPECT_FALSE(found);
      if (world.ssd->nand().bytes_read() != base) {
        device_touches++;
        base = world.ssd->nand().bytes_read();
      }
    }
    // Bloom filters should keep almost every absent-key probe off the device.
    EXPECT_LT(device_touches, 20);
  });
}

TEST(SstTest, CorruptMagicRejected) {
  SimWorld world;
  DbOptions opts = test::SmallDbOptions();
  world.Run([&] {
    std::unique_ptr<fs::WritableFile> file;
    ASSERT_TRUE(world.fs->NewWritableFile("bad.sst", &file).ok());
    ASSERT_TRUE(file->Append(std::string(64, 'g')).ok());
    ASSERT_TRUE(file->Close().ok());
    BlockCache cache(1 << 20);
    std::shared_ptr<SstReader> reader;
    Status s = SstReader::Open(opts, world.fs.get(), "bad.sst", 16, &cache,
                               &reader);
    EXPECT_TRUE(s.IsCorruption());
  });
}

TEST(WalTest, RoundTripRecords) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<fs::WritableFile> file;
    ASSERT_TRUE(world.fs->NewWritableFile("000001.log", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("first", 5).ok());
    ASSERT_TRUE(writer.AddRecord("second record", 13).ok());
    ASSERT_TRUE(writer.AddRecord("", 0).ok());
    ASSERT_TRUE(writer.Close().ok());

    std::unique_ptr<fs::RandomAccessFile> rfile;
    ASSERT_TRUE(world.fs->NewRandomAccessFile("000001.log", &rfile).ok());
    LogReader reader(std::move(rfile));
    std::string payload;
    Status s;
    ASSERT_TRUE(reader.ReadRecord(&payload, &s));
    EXPECT_EQ(payload, "first");
    ASSERT_TRUE(reader.ReadRecord(&payload, &s));
    EXPECT_EQ(payload, "second record");
    ASSERT_TRUE(reader.ReadRecord(&payload, &s));
    EXPECT_EQ(payload, "");
    EXPECT_FALSE(reader.ReadRecord(&payload, &s));
    EXPECT_TRUE(s.ok());
  });
}

TEST(WalTest, TornTailStopsCleanly) {
  SimWorld world;
  world.Run([&] {
    std::unique_ptr<fs::WritableFile> file;
    ASSERT_TRUE(world.fs->NewWritableFile("000002.log", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("complete", 8).ok());
    // Simulate a torn write: raw garbage tail shorter than its header claims.
    ASSERT_TRUE(file == nullptr);  // moved
    std::unique_ptr<fs::WritableFile> dummy;
    ASSERT_TRUE(writer.Close().ok());

    // Append a truncated header by writing a fresh "torn" file.
    std::unique_ptr<fs::RandomAccessFile> rfile;
    ASSERT_TRUE(world.fs->NewRandomAccessFile("000002.log", &rfile).ok());
    LogReader reader(std::move(rfile));
    std::string payload;
    Status s;
    ASSERT_TRUE(reader.ReadRecord(&payload, &s));
    EXPECT_EQ(payload, "complete");
    EXPECT_FALSE(reader.ReadRecord(&payload, &s));
    EXPECT_TRUE(s.ok());
  });
}

}  // namespace
}  // namespace kvaccel::lsm
