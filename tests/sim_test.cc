#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/backoff.h"
#include "sim/cpu_pool.h"
#include "sim/fault.h"
#include "sim/resource.h"
#include "sim/sim_env.h"
#include "sim/timeseries.h"

namespace kvaccel::sim {
namespace {

TEST(SimEnvTest, ClockAdvancesOnSleep) {
  SimEnv env;
  Nanos observed = 0;
  env.Spawn("t", [&] {
    env.SleepFor(FromMicros(10));
    observed = env.Now();
  });
  env.Run();
  EXPECT_EQ(observed, FromMicros(10));
}

TEST(SimEnvTest, ThreadsInterleaveByTime) {
  SimEnv env;
  std::vector<std::string> order;
  env.Spawn("a", [&] {
    env.SleepFor(100);
    order.push_back("a@100");
    env.SleepFor(200);  // wakes at 300
    order.push_back("a@300");
  });
  env.Spawn("b", [&] {
    env.SleepFor(200);
    order.push_back("b@200");
    env.SleepFor(200);  // wakes at 400
    order.push_back("b@400");
  });
  env.Run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a@100");
  EXPECT_EQ(order[1], "b@200");
  EXPECT_EQ(order[2], "a@300");
  EXPECT_EQ(order[3], "b@400");
}

TEST(SimEnvTest, TiesBrokenBySpawnOrder) {
  SimEnv env;
  std::vector<int> order;
  env.Spawn("first", [&] {
    env.SleepFor(100);
    order.push_back(1);
  });
  env.Spawn("second", [&] {
    env.SleepFor(100);
    order.push_back(2);
  });
  env.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(SimEnvTest, SpawnFromWithinSimThread) {
  SimEnv env;
  bool child_ran = false;
  env.Spawn("parent", [&] {
    env.SleepFor(50);
    SimEnv::Thread* child = env.Spawn("child", [&] {
      env.SleepFor(10);
      child_ran = true;
    });
    env.Join(child);
    EXPECT_TRUE(child_ran);
    EXPECT_EQ(env.Now(), 60u);
  });
  env.Run();
  EXPECT_TRUE(child_ran);
}

TEST(SimEnvTest, JoinFinishedThreadReturnsImmediately) {
  SimEnv env;
  env.Spawn("parent", [&] {
    SimEnv::Thread* child = env.Spawn("child", [] {});
    env.SleepFor(1000);  // child certainly done
    env.Join(child);
    EXPECT_EQ(env.Now(), 1000u);
  });
  env.Run();
}

TEST(SimEnvTest, MutexProvidesExclusion) {
  SimEnv env;
  SimMutex mu;
  int counter = 0;
  int max_in_section = 0;
  int in_section = 0;
  for (int i = 0; i < 4; i++) {
    env.Spawn("w" + std::to_string(i), [&] {
      for (int j = 0; j < 10; j++) {
        SimLockGuard g(mu);
        in_section++;
        max_in_section = std::max(max_in_section, in_section);
        env.SleepFor(7);  // hold across a yield
        counter++;
        in_section--;
      }
    });
  }
  env.Run();
  EXPECT_EQ(counter, 40);
  EXPECT_EQ(max_in_section, 1);
}

TEST(SimEnvTest, CondVarNotifyOne) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool ready = false;
  int woken = 0;
  env.Spawn("waiter", [&] {
    SimLockGuard g(mu);
    while (!ready) cv.Wait(mu);
    woken++;
  });
  env.Spawn("signaler", [&] {
    env.SleepFor(500);
    SimLockGuard g(mu);
    ready = true;
    cv.NotifyOne();
  });
  env.Run();
  EXPECT_EQ(woken, 1);
}

TEST(SimEnvTest, CondVarWaitForTimesOut) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool notified = true;
  Nanos end = 0;
  env.Spawn("waiter", [&] {
    SimLockGuard g(mu);
    notified = cv.WaitFor(mu, FromMicros(100));
    end = env.Now();
  });
  env.Run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(end, FromMicros(100));
}

TEST(SimEnvTest, CondVarWaitForNotifiedEarly) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool notified = false;
  Nanos end = 0;
  env.Spawn("waiter", [&] {
    SimLockGuard g(mu);
    notified = cv.WaitFor(mu, FromMicros(1000));
    end = env.Now();
  });
  env.Spawn("signaler", [&] {
    env.SleepFor(FromMicros(10));
    SimLockGuard g(mu);
    cv.NotifyOne();
  });
  env.Run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(end, FromMicros(10));
}

TEST(SimEnvTest, NotifyAllWakesEveryWaiter) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool go = false;
  int woken = 0;
  for (int i = 0; i < 5; i++) {
    env.Spawn("w" + std::to_string(i), [&] {
      SimLockGuard g(mu);
      while (!go) cv.Wait(mu);
      woken++;
    });
  }
  env.Spawn("signaler", [&] {
    env.SleepFor(100);
    SimLockGuard g(mu);
    go = true;
    cv.NotifyAll();
  });
  env.Run();
  EXPECT_EQ(woken, 5);
}

TEST(SimEnvTest, DaemonDoesNotBlockShutdown) {
  SimEnv env;
  int ticks = 0;
  env.Spawn(
      "daemon",
      [&] {
        for (;;) {
          env.SleepFor(FromMicros(100));
          ticks++;
        }
      },
      /*daemon=*/true);
  env.Spawn("main", [&] { env.SleepFor(FromMicros(1000)); });
  env.Run();  // must return despite the infinite daemon
  EXPECT_GE(ticks, 9);
}

TEST(SimEnvTest, DeadlockDetected) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  env.Spawn("stuck", [&] {
    SimLockGuard g(mu);
    cv.Wait(mu);  // nobody will ever notify
  });
  EXPECT_THROW(env.Run(), std::runtime_error);
}

TEST(SimEnvTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEnv env;
    std::vector<Nanos> log;
    SimMutex mu;
    for (int i = 0; i < 3; i++) {
      env.Spawn("t" + std::to_string(i), [&, i] {
        for (int j = 0; j < 5; j++) {
          SimLockGuard g(mu);
          env.SleepFor(static_cast<Nanos>(10 + i * 3));
          log.push_back(env.Now());
        }
      });
    }
    env.Run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RateResourceTest, SerializesTransfers) {
  SimEnv env;
  RateResource link(&env, "link", MBps(100));  // 100 MB/s = 100 B/us
  Nanos t1 = 0, t2 = 0;
  env.Spawn("a", [&] { t1 = link.Transfer(100'000); });   // 1 ms
  env.Spawn("b", [&] { t2 = link.Transfer(100'000); });   // queued behind a
  env.Run();
  EXPECT_NEAR(static_cast<double>(t1), 1e6, 1e3);
  EXPECT_NEAR(static_cast<double>(t2), 2e6, 1e3);
  EXPECT_EQ(link.total_bytes(), 200'000u);
}

TEST(RateResourceTest, TrafficSeriesAccounting) {
  SimEnv env;
  RateResource link(&env, "link", MBps(1));  // 1 MB/s
  env.Spawn("a", [&] {
    link.Transfer(500'000);             // 0.0..0.5 s
    env.SleepUntil(FromSecs(2));
    link.Transfer(1'000'000);           // 2.0..3.0 s
  });
  env.Run();
  const TimeSeries& ts = link.traffic();
  EXPECT_NEAR(ts.Bucket(0), 500'000, 1000);  // second 0
  EXPECT_NEAR(ts.Bucket(1), 0, 1);           // second 1 idle
  EXPECT_NEAR(ts.Bucket(2), 1'000'000, 1000);
  EXPECT_NEAR(ts.total(), 1'500'000, 1);
}

TEST(CpuPoolTest, QueueingWhenAllCoresBusy) {
  SimEnv env;
  CpuPool cpu(&env, "host", 2);
  std::vector<Nanos> done(3);
  for (int i = 0; i < 3; i++) {
    env.Spawn("w" + std::to_string(i),
              [&, i] { cpu.Consume(1e6); done[i] = env.Now(); });
  }
  env.Run();
  // Two run immediately, the third queues behind the first finisher.
  EXPECT_NEAR(static_cast<double>(done[0]), 1e6, 10);
  EXPECT_NEAR(static_cast<double>(done[1]), 1e6, 10);
  EXPECT_NEAR(static_cast<double>(done[2]), 2e6, 10);
  EXPECT_NEAR(cpu.busy_seconds(), 3e-3, 1e-5);
}

TEST(CpuPoolTest, SpeedFactorScalesWork) {
  SimEnv env;
  CpuPool slow(&env, "arm", 1, 0.25);  // quarter-speed core
  Nanos done = 0;
  env.Spawn("w", [&] {
    slow.Consume(1e6);
    done = env.Now();
  });
  env.Run();
  EXPECT_NEAR(static_cast<double>(done), 4e6, 10);
}

TEST(CpuPoolTest, UtilizationBetween) {
  SimEnv env;
  CpuPool cpu(&env, "host", 4);
  env.Spawn("w", [&] {
    cpu.Consume(2e9);  // one core busy 2 s of the 4-core pool
  });
  env.Run();
  double util = cpu.UtilizationBetween(0, FromSecs(2));
  EXPECT_NEAR(util, 0.25, 0.01);
}

TEST(CpuPoolTest, OverlappingJobsAccountExactlyPerCore) {
  SimEnv env;
  CpuPool cpu(&env, "host", 2);
  // Three jobs whose busy intervals overlap and queue:
  //   A: core0 [0, 3s]
  //   B: core1 [1s, 2s]
  //   C: arrives at 1.5s, books the earlier-free core1 back-to-back [2s, 4s]
  env.Spawn("a", [&] { cpu.Consume(3e9); });
  env.Spawn("b", [&] {
    env.SleepFor(FromSecs(1));
    cpu.Consume(1e9);
  });
  env.Spawn("c", [&] {
    env.SleepFor(FromMillis(1500));
    cpu.Consume(2e9);
  });
  env.Run();
  // Per-core busy time is exact, not prorated: core0 3 s, core1 1 + 2 s.
  EXPECT_NEAR(cpu.CoreBusyBetween(0, 0, FromSecs(4)), 3e9, 10);
  EXPECT_NEAR(cpu.CoreBusyBetween(1, 0, FromSecs(4)), 3e9, 10);
  // Windows that slice through the overlap see exact fractions.
  EXPECT_NEAR(cpu.UtilizationBetween(0, FromSecs(4)), 0.75, 1e-9);
  EXPECT_NEAR(cpu.UtilizationBetween(0, FromSecs(2)), 0.75, 1e-9);
  EXPECT_NEAR(cpu.UtilizationBetween(FromMillis(2500), FromMillis(3500)),
              0.75, 1e-9);
  // Tail window: only C's back-to-back booking on core1 remains busy.
  EXPECT_NEAR(cpu.UtilizationBetween(FromSecs(3), FromSecs(4)), 0.5, 1e-9);
  EXPECT_NEAR(cpu.CoreUtilizationBetween(0, FromSecs(3), FromSecs(4)), 0.0,
              1e-9);
  EXPECT_NEAR(cpu.CoreUtilizationBetween(1, FromSecs(3), FromSecs(4)), 1.0,
              1e-9);
  EXPECT_NEAR(cpu.busy_seconds(), 6.0, 1e-6);
}

TEST(CpuPoolTest, ChargesOverlapWithoutCoalescing) {
  SimEnv env;
  CpuPool cpu(&env, "host", 2);
  // Two actors Charge at the same instant: both costs must be counted (a
  // naive interval model would coalesce the identical [t, t+d) spans).
  env.Spawn("a", [&] {
    env.SleepFor(FromSecs(1));
    cpu.Charge(0.5e9);
  });
  env.Spawn("b", [&] {
    env.SleepFor(FromSecs(1));
    cpu.Charge(0.5e9);
  });
  env.Run();
  // 1 core-second of charge inside [0, 2s] of a 2-core pool.
  EXPECT_NEAR(cpu.UtilizationBetween(0, FromSecs(2)), 0.25, 1e-3);
}

TEST(TimeSeriesTest, AddAndRange) {
  TimeSeries ts(kNanosPerSec);
  ts.Add(FromSecs(0.5), 10);
  ts.AddRange(FromSecs(1), FromSecs(3), 20);  // 10 per bucket
  EXPECT_DOUBLE_EQ(ts.Bucket(0), 10);
  EXPECT_NEAR(ts.Bucket(1), 10, 1e-6);
  EXPECT_NEAR(ts.Bucket(2), 10, 1e-6);
  EXPECT_DOUBLE_EQ(ts.total(), 30);
  EXPECT_NEAR(ts.SumBetween(FromSecs(1), FromSecs(3)), 20, 1e-6);
}

TEST(TimeSeriesTest, RangeWithinOneBucket) {
  TimeSeries ts(kNanosPerSec);
  ts.AddRange(100, 200, 5);
  EXPECT_DOUBLE_EQ(ts.Bucket(0), 5);
}

TEST(IntervalRecorderTest, RecordsStallRegions) {
  IntervalRecorder rec;
  rec.Begin(100);
  rec.Begin(150);  // merged into the open interval
  rec.End(200);
  rec.Begin(300);
  rec.End(450);
  EXPECT_EQ(rec.Count(), 2u);
  EXPECT_EQ(rec.TotalDuration(), 250u);
  EXPECT_TRUE(rec.Contains(120));
  EXPECT_FALSE(rec.Contains(250));
  EXPECT_TRUE(rec.Contains(449));
  EXPECT_FALSE(rec.Contains(450));
}

TEST(IntervalRecorderTest, CloseAtClosesOpenInterval) {
  IntervalRecorder rec;
  rec.Begin(10);
  EXPECT_TRUE(rec.open());
  EXPECT_TRUE(rec.Contains(50));
  rec.CloseAt(60);
  EXPECT_FALSE(rec.open());
  EXPECT_EQ(rec.TotalDuration(), 50u);
}

TEST(BackoffTest, FirstRetryIsBaseAndCapBoundsEveryDelay) {
  Random64 rng(1);
  const Nanos base = FromMicros(200);
  const Nanos cap = FromMillis(10);
  Nanos prev = 0;
  for (int i = 0; i < 64; i++) {
    Nanos d = NextDecorrelatedDelay(&rng, base, cap, prev);
    if (i == 0) {
      EXPECT_EQ(d, base);  // prev == 0 => exactly base
    }
    EXPECT_GE(d, base);
    EXPECT_LE(d, cap);  // bounded-cap: no delay ever exceeds the cap
    prev = d;
  }
  // A long-enough chain must have hit the cap clamp at least once.
  EXPECT_EQ(NextDecorrelatedDelay(&rng, cap, cap, cap), cap);
}

TEST(BackoffTest, SameSeedReproducesScheduleAndJitterSpreads) {
  const Nanos base = FromMicros(100);
  const Nanos cap = FromMillis(50);
  auto schedule = [&](uint64_t seed) {
    Random64 rng(seed);
    std::vector<Nanos> out;
    Nanos prev = 0;
    for (int i = 0; i < 16; i++) {
      prev = NextDecorrelatedDelay(&rng, base, cap, prev);
      out.push_back(prev);
    }
    return out;
  };
  // Seed-reproducible: the whole schedule is a pure function of the stream.
  EXPECT_EQ(schedule(0xBACC0FF), schedule(0xBACC0FF));
  // Decorrelated: two retriers with different seeds must not march in
  // lockstep (that lockstep is the failure mode jitter exists to break).
  std::vector<Nanos> a = schedule(1), b = schedule(2);
  int differing = 0;
  for (size_t i = 1; i < a.size(); i++) {
    if (a[i] != b[i]) differing++;
  }
  EXPECT_GE(differing, 8) << "jitter streams are correlated";
  // And a single stream actually spreads instead of fixing on one value.
  std::set<Nanos> distinct(a.begin(), a.end());
  EXPECT_GE(distinct.size(), 4u);
}

TEST(FaultRegistryTest, KnownFaultSitesListsEverySubsystem) {
  std::set<std::string> names;
  for (const FaultSiteInfo& s : KnownFaultSites()) {
    EXPECT_NE(s.what[0], '\0') << s.site << " has no description";
    names.insert(s.site);
  }
  EXPECT_EQ(names.size(), KnownFaultSites().size()) << "duplicate site rows";
  for (const char* expected :
       {"devlsm.put.transient", "net.send.transient", "crash.wal.post_sync",
        "crash.redirect.mid", "crash.net.send.mid", "simfs.powercut.torn",
        "ndp.compact.transient", "crash.ndp.merge.mid",
        "crash.ndp.submerge.mid", "crash.ndp.result.pre", "net.partition.sym",
        "net.partition.tx", "net.partition.ack", "net.delay", "net.dup",
        "net.reorder"}) {
    EXPECT_TRUE(names.count(expected)) << expected << " not registered";
  }
}

// Docs-drift gate: every crash.* site cited in DESIGN.md must exist in the
// registry, and every registered crash.* site must be documented. DESIGN.md
// may use one level of brace shorthand: crash.wal.{post_append,post_sync}.
TEST(FaultRegistryTest, DesignDocCrashSitesMatchRegistry) {
  const std::string path = std::string(KVACCEL_SOURCE_DIR) + "/DESIGN.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  auto site_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  };
  std::set<std::string> documented;
  for (size_t pos = text.find("crash."); pos != std::string::npos;
       pos = text.find("crash.", pos + 1)) {
    size_t end = pos;
    while (end < text.size() && (site_char(text[end]) || text[end] == '{' ||
                                 text[end] == '}' || text[end] == ','))
      end++;
    std::string tok = text.substr(pos, end - pos);
    while (!tok.empty() && (tok.back() == '.' || tok.back() == ','))
      tok.pop_back();
    // Expand one {a,b,...} group into full site names.
    size_t open = tok.find('{'), close = tok.find('}');
    std::vector<std::string> expanded;
    if (open != std::string::npos && close != std::string::npos &&
        close > open) {
      std::string prefix = tok.substr(0, open);
      std::string suffix = tok.substr(close + 1);
      std::string body = tok.substr(open + 1, close - open - 1);
      size_t start = 0;
      while (start <= body.size()) {
        size_t comma = body.find(',', start);
        if (comma == std::string::npos) comma = body.size();
        expanded.push_back(prefix + body.substr(start, comma - start) +
                           suffix);
        start = comma + 1;
      }
    } else if (tok.find('{') == std::string::npos) {
      expanded.push_back(tok);
    }
    for (const std::string& site : expanded) {
      if (site.find('.') == std::string::npos || site == "crash") continue;
      if (site.compare(0, 6, "crash.") == 0 && site.size() > 6) {
        documented.insert(site);
      }
    }
  }
  ASSERT_FALSE(documented.empty()) << "no crash.* sites found in DESIGN.md";

  std::set<std::string> registered;
  for (const FaultSiteInfo& s : KnownFaultSites()) {
    if (std::string(s.site).compare(0, 6, "crash.") == 0) {
      registered.insert(s.site);
    }
  }
  for (const std::string& site : documented) {
    EXPECT_TRUE(registered.count(site))
        << "DESIGN.md cites unregistered crash site " << site;
  }
  for (const std::string& site : registered) {
    EXPECT_TRUE(documented.count(site))
        << "registered crash site " << site << " is undocumented in DESIGN.md";
  }
}

}  // namespace
}  // namespace kvaccel::sim
