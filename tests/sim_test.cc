#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/cpu_pool.h"
#include "sim/resource.h"
#include "sim/sim_env.h"
#include "sim/timeseries.h"

namespace kvaccel::sim {
namespace {

TEST(SimEnvTest, ClockAdvancesOnSleep) {
  SimEnv env;
  Nanos observed = 0;
  env.Spawn("t", [&] {
    env.SleepFor(FromMicros(10));
    observed = env.Now();
  });
  env.Run();
  EXPECT_EQ(observed, FromMicros(10));
}

TEST(SimEnvTest, ThreadsInterleaveByTime) {
  SimEnv env;
  std::vector<std::string> order;
  env.Spawn("a", [&] {
    env.SleepFor(100);
    order.push_back("a@100");
    env.SleepFor(200);  // wakes at 300
    order.push_back("a@300");
  });
  env.Spawn("b", [&] {
    env.SleepFor(200);
    order.push_back("b@200");
    env.SleepFor(200);  // wakes at 400
    order.push_back("b@400");
  });
  env.Run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a@100");
  EXPECT_EQ(order[1], "b@200");
  EXPECT_EQ(order[2], "a@300");
  EXPECT_EQ(order[3], "b@400");
}

TEST(SimEnvTest, TiesBrokenBySpawnOrder) {
  SimEnv env;
  std::vector<int> order;
  env.Spawn("first", [&] {
    env.SleepFor(100);
    order.push_back(1);
  });
  env.Spawn("second", [&] {
    env.SleepFor(100);
    order.push_back(2);
  });
  env.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(SimEnvTest, SpawnFromWithinSimThread) {
  SimEnv env;
  bool child_ran = false;
  env.Spawn("parent", [&] {
    env.SleepFor(50);
    SimEnv::Thread* child = env.Spawn("child", [&] {
      env.SleepFor(10);
      child_ran = true;
    });
    env.Join(child);
    EXPECT_TRUE(child_ran);
    EXPECT_EQ(env.Now(), 60u);
  });
  env.Run();
  EXPECT_TRUE(child_ran);
}

TEST(SimEnvTest, JoinFinishedThreadReturnsImmediately) {
  SimEnv env;
  env.Spawn("parent", [&] {
    SimEnv::Thread* child = env.Spawn("child", [] {});
    env.SleepFor(1000);  // child certainly done
    env.Join(child);
    EXPECT_EQ(env.Now(), 1000u);
  });
  env.Run();
}

TEST(SimEnvTest, MutexProvidesExclusion) {
  SimEnv env;
  SimMutex mu;
  int counter = 0;
  int max_in_section = 0;
  int in_section = 0;
  for (int i = 0; i < 4; i++) {
    env.Spawn("w" + std::to_string(i), [&] {
      for (int j = 0; j < 10; j++) {
        SimLockGuard g(mu);
        in_section++;
        max_in_section = std::max(max_in_section, in_section);
        env.SleepFor(7);  // hold across a yield
        counter++;
        in_section--;
      }
    });
  }
  env.Run();
  EXPECT_EQ(counter, 40);
  EXPECT_EQ(max_in_section, 1);
}

TEST(SimEnvTest, CondVarNotifyOne) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool ready = false;
  int woken = 0;
  env.Spawn("waiter", [&] {
    SimLockGuard g(mu);
    while (!ready) cv.Wait(mu);
    woken++;
  });
  env.Spawn("signaler", [&] {
    env.SleepFor(500);
    SimLockGuard g(mu);
    ready = true;
    cv.NotifyOne();
  });
  env.Run();
  EXPECT_EQ(woken, 1);
}

TEST(SimEnvTest, CondVarWaitForTimesOut) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool notified = true;
  Nanos end = 0;
  env.Spawn("waiter", [&] {
    SimLockGuard g(mu);
    notified = cv.WaitFor(mu, FromMicros(100));
    end = env.Now();
  });
  env.Run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(end, FromMicros(100));
}

TEST(SimEnvTest, CondVarWaitForNotifiedEarly) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool notified = false;
  Nanos end = 0;
  env.Spawn("waiter", [&] {
    SimLockGuard g(mu);
    notified = cv.WaitFor(mu, FromMicros(1000));
    end = env.Now();
  });
  env.Spawn("signaler", [&] {
    env.SleepFor(FromMicros(10));
    SimLockGuard g(mu);
    cv.NotifyOne();
  });
  env.Run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(end, FromMicros(10));
}

TEST(SimEnvTest, NotifyAllWakesEveryWaiter) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  bool go = false;
  int woken = 0;
  for (int i = 0; i < 5; i++) {
    env.Spawn("w" + std::to_string(i), [&] {
      SimLockGuard g(mu);
      while (!go) cv.Wait(mu);
      woken++;
    });
  }
  env.Spawn("signaler", [&] {
    env.SleepFor(100);
    SimLockGuard g(mu);
    go = true;
    cv.NotifyAll();
  });
  env.Run();
  EXPECT_EQ(woken, 5);
}

TEST(SimEnvTest, DaemonDoesNotBlockShutdown) {
  SimEnv env;
  int ticks = 0;
  env.Spawn(
      "daemon",
      [&] {
        for (;;) {
          env.SleepFor(FromMicros(100));
          ticks++;
        }
      },
      /*daemon=*/true);
  env.Spawn("main", [&] { env.SleepFor(FromMicros(1000)); });
  env.Run();  // must return despite the infinite daemon
  EXPECT_GE(ticks, 9);
}

TEST(SimEnvTest, DeadlockDetected) {
  SimEnv env;
  SimMutex mu;
  SimCondVar cv;
  env.Spawn("stuck", [&] {
    SimLockGuard g(mu);
    cv.Wait(mu);  // nobody will ever notify
  });
  EXPECT_THROW(env.Run(), std::runtime_error);
}

TEST(SimEnvTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEnv env;
    std::vector<Nanos> log;
    SimMutex mu;
    for (int i = 0; i < 3; i++) {
      env.Spawn("t" + std::to_string(i), [&, i] {
        for (int j = 0; j < 5; j++) {
          SimLockGuard g(mu);
          env.SleepFor(static_cast<Nanos>(10 + i * 3));
          log.push_back(env.Now());
        }
      });
    }
    env.Run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RateResourceTest, SerializesTransfers) {
  SimEnv env;
  RateResource link(&env, "link", MBps(100));  // 100 MB/s = 100 B/us
  Nanos t1 = 0, t2 = 0;
  env.Spawn("a", [&] { t1 = link.Transfer(100'000); });   // 1 ms
  env.Spawn("b", [&] { t2 = link.Transfer(100'000); });   // queued behind a
  env.Run();
  EXPECT_NEAR(static_cast<double>(t1), 1e6, 1e3);
  EXPECT_NEAR(static_cast<double>(t2), 2e6, 1e3);
  EXPECT_EQ(link.total_bytes(), 200'000u);
}

TEST(RateResourceTest, TrafficSeriesAccounting) {
  SimEnv env;
  RateResource link(&env, "link", MBps(1));  // 1 MB/s
  env.Spawn("a", [&] {
    link.Transfer(500'000);             // 0.0..0.5 s
    env.SleepUntil(FromSecs(2));
    link.Transfer(1'000'000);           // 2.0..3.0 s
  });
  env.Run();
  const TimeSeries& ts = link.traffic();
  EXPECT_NEAR(ts.Bucket(0), 500'000, 1000);  // second 0
  EXPECT_NEAR(ts.Bucket(1), 0, 1);           // second 1 idle
  EXPECT_NEAR(ts.Bucket(2), 1'000'000, 1000);
  EXPECT_NEAR(ts.total(), 1'500'000, 1);
}

TEST(CpuPoolTest, QueueingWhenAllCoresBusy) {
  SimEnv env;
  CpuPool cpu(&env, "host", 2);
  std::vector<Nanos> done(3);
  for (int i = 0; i < 3; i++) {
    env.Spawn("w" + std::to_string(i),
              [&, i] { cpu.Consume(1e6); done[i] = env.Now(); });
  }
  env.Run();
  // Two run immediately, the third queues behind the first finisher.
  EXPECT_NEAR(static_cast<double>(done[0]), 1e6, 10);
  EXPECT_NEAR(static_cast<double>(done[1]), 1e6, 10);
  EXPECT_NEAR(static_cast<double>(done[2]), 2e6, 10);
  EXPECT_NEAR(cpu.busy_seconds(), 3e-3, 1e-5);
}

TEST(CpuPoolTest, SpeedFactorScalesWork) {
  SimEnv env;
  CpuPool slow(&env, "arm", 1, 0.25);  // quarter-speed core
  Nanos done = 0;
  env.Spawn("w", [&] {
    slow.Consume(1e6);
    done = env.Now();
  });
  env.Run();
  EXPECT_NEAR(static_cast<double>(done), 4e6, 10);
}

TEST(CpuPoolTest, UtilizationBetween) {
  SimEnv env;
  CpuPool cpu(&env, "host", 4);
  env.Spawn("w", [&] {
    cpu.Consume(2e9);  // one core busy 2 s of the 4-core pool
  });
  env.Run();
  double util = cpu.UtilizationBetween(0, FromSecs(2));
  EXPECT_NEAR(util, 0.25, 0.01);
}

TEST(TimeSeriesTest, AddAndRange) {
  TimeSeries ts(kNanosPerSec);
  ts.Add(FromSecs(0.5), 10);
  ts.AddRange(FromSecs(1), FromSecs(3), 20);  // 10 per bucket
  EXPECT_DOUBLE_EQ(ts.Bucket(0), 10);
  EXPECT_NEAR(ts.Bucket(1), 10, 1e-6);
  EXPECT_NEAR(ts.Bucket(2), 10, 1e-6);
  EXPECT_DOUBLE_EQ(ts.total(), 30);
  EXPECT_NEAR(ts.SumBetween(FromSecs(1), FromSecs(3)), 20, 1e-6);
}

TEST(TimeSeriesTest, RangeWithinOneBucket) {
  TimeSeries ts(kNanosPerSec);
  ts.AddRange(100, 200, 5);
  EXPECT_DOUBLE_EQ(ts.Bucket(0), 5);
}

TEST(IntervalRecorderTest, RecordsStallRegions) {
  IntervalRecorder rec;
  rec.Begin(100);
  rec.Begin(150);  // merged into the open interval
  rec.End(200);
  rec.Begin(300);
  rec.End(450);
  EXPECT_EQ(rec.Count(), 2u);
  EXPECT_EQ(rec.TotalDuration(), 250u);
  EXPECT_TRUE(rec.Contains(120));
  EXPECT_FALSE(rec.Contains(250));
  EXPECT_TRUE(rec.Contains(449));
  EXPECT_FALSE(rec.Contains(450));
}

TEST(IntervalRecorderTest, CloseAtClosesOpenInterval) {
  IntervalRecorder rec;
  rec.Begin(10);
  EXPECT_TRUE(rec.open());
  EXPECT_TRUE(rec.Contains(50));
  rec.CloseAt(60);
  EXPECT_FALSE(rec.open());
  EXPECT_EQ(rec.TotalDuration(), 50u);
}

}  // namespace
}  // namespace kvaccel::sim
