#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/units.h"
#include "common/value.h"

namespace kvaccel {

// Shrinks a histogram's bucket vector in place, simulating a layout from a
// build with a shorter bucket table (the case Merge must fold, not overrun).
class HistogramTestPeer {
 public:
  static void TruncateBuckets(Histogram* h, size_t n) {
    uint64_t folded = 0;
    for (size_t i = n; i < h->buckets_.size(); i++) folded += h->buckets_[i];
    h->buckets_.resize(n);
    h->buckets_.back() += folded;  // keep count_ consistent with buckets_
  }
};

namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TryAgain().IsTryAgain());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix ordering: shorter sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abc").starts_with(Slice("b")));
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(CodingTest, FixedRoundTrip) {
  std::string s;
  PutFixed16(&s, 0xbeef);
  PutFixed32(&s, 0xdeadbeefu);
  PutFixed64(&s, 0x0123456789abcdefull);
  Slice in(s);
  uint32_t v32;
  uint64_t v64;
  EXPECT_EQ(DecodeFixed16(in.data()), 0xbeef);
  in.remove_prefix(2);
  ASSERT_TRUE(GetFixed32(&in, &v32));
  EXPECT_EQ(v32, 0xdeadbeefu);
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string s;
  std::vector<uint64_t> values;
  for (uint64_t shift = 0; shift < 64; shift += 7) {
    values.push_back(uint64_t{1} << shift);
    values.push_back((uint64_t{1} << shift) - 1);
  }
  values.push_back(UINT64_MAX);
  values.push_back(0);
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values = {0, 1, 127, 128, 16383, 16384, UINT32_MAX};
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice in(s);
  for (uint32_t v : values) {
    uint32_t got;
    ASSERT_TRUE(GetVarint32(&in, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, VarintLength) {
  EXPECT_EQ(VarintLength(0), 1);
  EXPECT_EQ(VarintLength(127), 1);
  EXPECT_EQ(VarintLength(128), 2);
  EXPECT_EQ(VarintLength(UINT64_MAX), 10);
}

TEST(CodingTest, TruncatedInputFails) {
  std::string s;
  PutVarint64(&s, UINT64_MAX);
  for (size_t cut = 0; cut + 1 < s.size(); cut++) {
    Slice in(s.data(), cut);
    uint64_t got;
    EXPECT_FALSE(GetVarint64(&in, &got)) << "cut=" << cut;
  }
  Slice short32("x", 1);
  uint32_t v32;
  EXPECT_FALSE(GetFixed32(&short32, &v32));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("payload"));
  PutLengthPrefixedSlice(&s, Slice(""));
  Slice in(s);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  EXPECT_EQ(a.ToString(), "payload");
  EXPECT_TRUE(b.empty());
}

TEST(Crc32cTest, KnownValues) {
  // Standard CRC32C test vector: "123456789" -> 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  // CRC of 32 zero bytes -> 0x8a9136aa.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, 32), 0x8a9136aau);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const std::string data = "hello world, this is a crc test";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t part = crc32c::Value(data.data(), 10);
  part = crc32c::Extend(part, data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Hash32("abc", 3, 1), Hash32("abc", 3, 1));
  EXPECT_NE(Hash32("abc", 3, 1), Hash32("abd", 3, 1));
  EXPECT_NE(Hash32("abc", 3, 1), Hash32("abc", 3, 2));
  EXPECT_EQ(Hash64("abcdefgh", 8), Hash64("abcdefgh", 8));
  EXPECT_NE(Hash64("abcdefgh", 8), Hash64("abcdefgi", 8));
}

TEST(HashTest, TailBytesMatter) {
  EXPECT_NE(Hash64("abcdefghi", 9), Hash64("abcdefghj", 9));
  EXPECT_NE(Hash32("ab", 2, 0), Hash32("ac", 2, 0));
}

TEST(RandomTest, DeterministicStreams) {
  Random64 a(42), b(42), c(43);
  for (int i = 0; i < 100; i++) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random64 a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RandomTest, UniformInRange) {
  Random64 r(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(17), 17u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfianSkew) {
  ZipfianGenerator zipf(1000, 0.99, 123);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; i++) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Head item should be much hotter than a mid-range item.
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(ArenaTest, AllocatesDistinctMemory) {
  Arena arena;
  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  memset(a, 0xaa, 100);
  memset(b, 0xbb, 100);
  EXPECT_EQ(static_cast<unsigned char>(a[99]), 0xaa);
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, LargeAndAlignedAllocations) {
  Arena arena;
  char* big = arena.Allocate(3u << 20);  // > block size
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[(3u << 20) - 1] = 2;
  char* aligned = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(aligned) %
                alignof(std::max_align_t),
            0u);
}

TEST(HistogramTest, PercentilesOfUniform) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) h.Add(i);
  EXPECT_EQ(h.Count(), 10000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 10000u);
  EXPECT_NEAR(h.Average(), 5000.5, 1.0);
  EXPECT_NEAR(h.Percentile(50), 5000, 600);
  EXPECT_NEAR(h.Percentile(99), 9900, 1000);
  EXPECT_LE(h.Percentile(99.9), 10000);
}

TEST(HistogramTest, MergeAndClear) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 1000u);
  a.Clear();
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(77);
  EXPECT_NEAR(h.Percentile(50), 77, 8);
  EXPECT_NEAR(h.Percentile(99.9), 77, 8);
}

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Average(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.Percentile(99.9), 0.0);
}

TEST(HistogramTest, SingleValueBoundsPercentiles) {
  Histogram h;
  h.Add(500);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 500u);
  EXPECT_EQ(h.Max(), 500u);
  EXPECT_EQ(h.Average(), 500.0);
  // Every percentile of a single-sample distribution lands in its bucket.
  for (double p : {0.1, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(h.Percentile(p), 500, 50) << "p=" << p;
  }
}

TEST(HistogramTest, MergeIntoEmptyPreservesEverything) {
  Histogram a, b;
  for (int i = 1; i <= 1000; i++) b.Add(i);
  const double p50 = b.Percentile(50);
  const double p99 = b.Percentile(99);
  a.Merge(b);
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.Min(), b.Min());
  EXPECT_EQ(a.Max(), b.Max());
  EXPECT_EQ(a.Average(), b.Average());
  EXPECT_EQ(a.Percentile(50), p50);
  EXPECT_EQ(a.Percentile(99), p99);
}

TEST(HistogramTest, MergeEmptyIsANoOp) {
  Histogram a, empty;
  for (int i = 1; i <= 1000; i++) a.Add(i);
  const double p50 = a.Percentile(50);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1000u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_EQ(a.Max(), 1000u);
  EXPECT_EQ(a.Percentile(50), p50);
}

TEST(HistogramTest, MergeDisjointRangesKeepsTails) {
  Histogram lo, hi;
  for (int i = 1; i <= 300; i++) lo.Add(i);
  for (int i = 0; i <= 100; i++) hi.Add(100000 + i * 10);
  lo.Merge(hi);
  EXPECT_EQ(lo.Count(), 401u);
  EXPECT_EQ(lo.Min(), 1u);
  EXPECT_EQ(lo.Max(), 101000u);
  // The low range dominates the median; the merged tail sits in the high
  // range contributed entirely by `hi`.
  EXPECT_LT(lo.Percentile(50), 1000);
  EXPECT_GT(lo.Percentile(99), 50000);
}

TEST(HistogramTest, MergeMismatchedLayoutFoldsIntoOverflow) {
  // `other` has a shorter bucket table than `a` (merge of a longer table
  // into a shorter one): the shared prefix merges bucket-by-bucket and
  // count/sum/min/max stay exact.
  Histogram a, shorter;
  for (int i = 1; i <= 500; i++) a.Add(i);
  for (int i = 1; i <= 500; i++) shorter.Add(i * 1000);
  HistogramTestPeer::TruncateBuckets(&shorter, 8);
  a.Merge(shorter);
  EXPECT_EQ(a.Count(), 1000u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_EQ(a.Max(), 500000u);
  // Everything `shorter` folded into its 8th bucket lands in `a`'s 8th
  // bucket, far below the true values — the median degrades gracefully
  // instead of Merge indexing out of range.
  EXPECT_GT(a.Percentile(99), a.Percentile(1));

  // The opposite direction: merging a longer table into a truncated one
  // must fold the excess into the overflow (last) bucket, preserving count.
  Histogram b, full;
  for (int i = 1; i <= 100; i++) b.Add(i);
  HistogramTestPeer::TruncateBuckets(&b, 4);
  for (int i = 0; i < 50; i++) full.Add(1000000);
  b.Merge(full);
  EXPECT_EQ(b.Count(), 150u);
  EXPECT_EQ(b.Max(), 1000000u);
  // The folded tail keeps high percentiles inside the (truncated) table's
  // top bucket rather than losing the samples.
  EXPECT_GT(b.Percentile(99), 0.0);
}

TEST(ValueTest, InlineRoundTrip) {
  Value v = Value::Inline("some bytes");
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.logical_size(), 10u);
  EXPECT_EQ(v.Materialize(), "some bytes");
  std::string enc;
  v.EncodeTo(&enc);
  Slice in(enc);
  Value out;
  ASSERT_TRUE(Value::DecodeFrom(&in, &out));
  EXPECT_EQ(out, v);
  EXPECT_TRUE(in.empty());
}

TEST(ValueTest, SyntheticRoundTrip) {
  Value v = Value::Synthetic(1234, 4096);
  EXPECT_TRUE(v.is_synthetic());
  EXPECT_EQ(v.logical_size(), 4096u);
  std::string bytes = v.Materialize();
  EXPECT_EQ(bytes.size(), 4096u);
  // Deterministic regeneration.
  EXPECT_EQ(bytes, Value::Synthetic(1234, 4096).Materialize());
  EXPECT_NE(bytes, Value::Synthetic(1235, 4096).Materialize());
  std::string enc;
  v.EncodeTo(&enc);
  // The whole point: a 4 KB value encodes to ~11 bytes.
  EXPECT_LT(enc.size(), 16u);
  Value out = Value::DecodeOrDie(enc);
  EXPECT_EQ(out, v);
}

TEST(ValueTest, SyntheticOddSize) {
  for (uint32_t size : {0u, 1u, 7u, 8u, 9u, 100u}) {
    Value v = Value::Synthetic(9, size);
    EXPECT_EQ(v.Materialize().size(), size);
  }
}

TEST(ValueTest, DecodeRejectsGarbage) {
  Slice empty("", 0);
  Value out;
  EXPECT_FALSE(Value::DecodeFrom(&empty, &out));
  std::string bad = "\x07junk";
  Slice in(bad);
  EXPECT_FALSE(Value::DecodeFrom(&in, &out));
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(FromMicros(1.37), 1370u);
  EXPECT_EQ(FromMillis(100), 100'000'000u);
  EXPECT_EQ(FromSecs(600), 600ull * kNanosPerSec);
  EXPECT_EQ(KiB(4), 4096u);
  EXPECT_EQ(MiB(1), 1048576u);
  // 630 MB/s moving 630 MB takes 1 second.
  EXPECT_NEAR(static_cast<double>(TransferNanos(630'000'000, MBps(630))),
              1e9, 1.0);
}

}  // namespace
}  // namespace kvaccel
