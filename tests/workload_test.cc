// Workload-matrix tests (DESIGN.md §14): Zipfian/hotspot generator shape and
// boundary behaviour, zeta-cache construction cost, mix-spec parsing, and the
// open-loop arrival engine's coordinated-omission-free accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "harness/presets.h"
#include "harness/report_json.h"
#include "harness/workload.h"

namespace kvaccel::harness {
namespace {

// ---- Satellite: Next() must never reach items_ (Gray-method rounding) ----

TEST(ZipfianBoundaryTest, UniformBoundaryNeverReachesItems) {
  for (double theta : {0.2, 0.5, 0.8, 0.99}) {
    for (uint64_t items : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
      ZipfianGenerator z(items, theta, 1);
      EXPECT_EQ(z.FromUniform(0.0), 0u);
      // Hammer u -> 1.0: the power term approaches 1.0 and the unclamped
      // cast lands exactly on items_ (one past the last rank).
      double u = 1.0;
      for (int i = 0; i < 300; i++) {
        EXPECT_LT(z.FromUniform(u), items)
            << "items=" << items << " theta=" << theta << " u=" << u;
        u = std::nextafter(u, 0.0);
      }
    }
  }
}

TEST(ZipfianBoundaryTest, SeededDrawsStayInRange) {
  ZipfianGenerator z(10, 0.99, 20260809);
  for (int i = 0; i < 1000000; i++) {
    ASSERT_LT(z.Next(), 10u) << "draw " << i;
  }
}

// ---- Satellite: zeta is cached/extended, not recomputed per constructor ----

TEST(ZetaCacheTest, RepeatConstructionAddsNoTerms) {
  const double theta = 0.7654321;  // unique to this test: cold cache
  const uint64_t n = 300000;
  const uint64_t before = ZipfianGenerator::ZetaTermsComputed();
  { ZipfianGenerator first(n, theta, 1); }
  const uint64_t after_first = ZipfianGenerator::ZetaTermsComputed();
  // First construction pays the exact sum once (n terms + the zeta(2) pair).
  EXPECT_GE(after_first - before, n);
  EXPECT_LE(after_first - before, n + 2);
  // A multi-tenant fleet over the same keyspace must be free.
  for (uint64_t s = 0; s < 64; s++) ZipfianGenerator g(n, theta, s);
  EXPECT_EQ(ZipfianGenerator::ZetaTermsComputed(), after_first);
}

TEST(ZetaCacheTest, GrownKeyspaceExtendsIncrementally) {
  const double theta = 0.8123457;  // unique to this test: cold cache
  { ZipfianGenerator small(200000, theta, 1); }
  const uint64_t after_small = ZipfianGenerator::ZetaTermsComputed();
  { ZipfianGenerator big(250000, theta, 1); }
  const uint64_t after_big = ZipfianGenerator::ZetaTermsComputed();
  // Growing 200k -> 250k costs only the 50k delta, not a fresh 250k sum.
  EXPECT_EQ(after_big - after_small, 50000u);
}

TEST(ZetaCacheTest, CachedSumsMatchFreshSums) {
  // Same theta constructed at increasing sizes (cache extensions) must
  // produce the same draw sequence as a cold generator of the final size.
  const double theta = 0.6543219;  // unique to this test
  { ZipfianGenerator warm1(1000, theta, 1); }
  { ZipfianGenerator warm2(50000, theta, 1); }
  ZipfianGenerator via_cache(100000, theta, 99);
  const double theta2 = theta;
  ZipfianGenerator direct(100000, theta2, 99);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(via_cache.Next(), direct.Next());
}

// ---- Satellite: distribution-shape tests, deterministic per seed ----

TEST(ZipfianShapeTest, TopRankMassMatchesAnalytic) {
  const uint64_t n = 1000;
  const double theta = 0.99;
  double zeta = 0;
  for (uint64_t i = 1; i <= n; i++) {
    zeta += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  const int draws = 200000;
  std::vector<uint32_t> counts(n, 0);
  ZipfianGenerator z(n, theta, 777);
  for (int i = 0; i < draws; i++) {
    uint64_t v = z.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Rank-0 mass: 1/zeta ≈ 0.133 for (1000, 0.99).
  const double top1 = static_cast<double>(counts[0]) / draws;
  EXPECT_NEAR(top1, 1.0 / zeta, 0.02);
  // Top-10 mass vs the analytic partial sum.
  double analytic10 = 0;
  for (uint64_t i = 1; i <= 10; i++) {
    analytic10 += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  analytic10 /= zeta;
  double top10 = 0;
  for (int i = 0; i < 10; i++) top10 += counts[i];
  EXPECT_NEAR(top10 / draws, analytic10, 0.02);
}

TEST(ZipfianShapeTest, DeterministicPerSeed) {
  ZipfianGenerator a(4096, 0.99, 31337);
  ZipfianGenerator b(4096, 0.99, 31337);
  ZipfianGenerator c(4096, 0.99, 31338);
  bool diverged = false;
  for (int i = 0; i < 4096; i++) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);  // a different seed is a different stream
}

TEST(HotspotShapeTest, HotRangeReceivesOpFraction) {
  HotspotGenerator h(10000, 0.1, 0.9, 42);
  EXPECT_EQ(h.hot_items(), 1000u);
  const int draws = 100000;
  int hot = 0;
  for (int i = 0; i < draws; i++) {
    uint64_t v = h.Next();
    ASSERT_LT(v, 10000u);
    if (v < 1000) hot++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / draws, 0.9, 0.01);
}

TEST(HotspotShapeTest, DeterministicPerSeedAndDegenerateRange) {
  HotspotGenerator a(512, 0.25, 0.8, 7);
  HotspotGenerator b(512, 0.25, 0.8, 7);
  for (int i = 0; i < 2048; i++) EXPECT_EQ(a.Next(), b.Next());
  // hot_frac=1: everything is hot; draws must stay in range.
  HotspotGenerator all_hot(16, 1.0, 0.5, 9);
  for (int i = 0; i < 256; i++) EXPECT_LT(all_hot.Next(), 16u);
}

// ---- Mix-spec parsing ----

TEST(ParseWorkloadMixTest, PresetsAndOverrides) {
  std::vector<TenantProfile> profs;
  std::string err;
  ASSERT_TRUE(ParseWorkloadMix("write-heavy", &profs, &err)) << err;
  ASSERT_EQ(profs.size(), 1u);
  EXPECT_DOUBLE_EQ(profs[0].mix.put_pct, 90);
  EXPECT_DOUBLE_EQ(profs[0].mix.get_pct, 10);
  EXPECT_EQ(profs[0].dist, KeyDist::kUniform);

  ASSERT_TRUE(ParseWorkloadMix("churn,dist=zipfian,theta=0.9", &profs, &err))
      << err;
  EXPECT_DOUBLE_EQ(profs[0].mix.delete_pct, 30);
  EXPECT_EQ(profs[0].dist, KeyDist::kZipfian);
  EXPECT_DOUBLE_EQ(profs[0].zipf_theta, 0.9);
}

TEST(ParseWorkloadMixTest, ExplicitPercentagesReplaceDefault) {
  std::vector<TenantProfile> profs;
  std::string err;
  ASSERT_TRUE(ParseWorkloadMix("get=60,scan=40,scanlen=128", &profs, &err))
      << err;
  EXPECT_DOUBLE_EQ(profs[0].mix.put_pct, 0);  // not the default 100
  EXPECT_DOUBLE_EQ(profs[0].mix.get_pct, 60);
  EXPECT_DOUBLE_EQ(profs[0].mix.scan_pct, 40);
  EXPECT_EQ(profs[0].mix.scan_len, 128);
}

TEST(ParseWorkloadMixTest, PerTenantSegments) {
  std::vector<TenantProfile> profs;
  std::string err;
  ASSERT_TRUE(ParseWorkloadMix(
      "write-heavy;analytics,dist=hotspot,hot_frac=0.2,hot_ops=0.8", &profs,
      &err))
      << err;
  ASSERT_EQ(profs.size(), 2u);
  EXPECT_DOUBLE_EQ(profs[0].mix.put_pct, 90);
  EXPECT_DOUBLE_EQ(profs[1].mix.scan_pct, 50);
  EXPECT_EQ(profs[1].dist, KeyDist::kHotspot);
  EXPECT_DOUBLE_EQ(profs[1].hotspot_frac, 0.2);
}

TEST(ParseWorkloadMixTest, RejectsMalformedSpecs) {
  std::vector<TenantProfile> profs;
  std::string err;
  EXPECT_FALSE(ParseWorkloadMix("no-such-preset", &profs, &err));
  EXPECT_FALSE(ParseWorkloadMix("put=abc", &profs, &err));
  EXPECT_FALSE(ParseWorkloadMix("put=50,theta=1.5", &profs, &err));
  EXPECT_FALSE(ParseWorkloadMix("put=90,get=90", &profs, &err));  // > 100
  EXPECT_FALSE(ParseWorkloadMix("", &profs, &err));
  EXPECT_FALSE(ParseWorkloadMix("write-heavy;;churn", &profs, &err));
}

// ---- Open-loop engine ----

// Satellite: deadline-miss counters go nonzero when stalls overlap a spike.
// Tiny-scale RocksDB stalls under sustained 4 KB ingest; the spike drives
// arrivals far past what the stalled writer can drain, so the backlog shows
// up as arrival-deadline misses (and the arrival view dominates the
// service-time view, which coordinated omission used to hide).
TEST(OpenLoopTest, SpikeOverStallCountsDeadlineMisses) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.sut.compaction_threads = 1;
  c.workload.type = WorkloadConfig::Type::kMixed;
  c.workload.duration = FromSecs(10);
  c.workload.arrival = Arrival::kSpike;
  c.workload.arrival_rate = 4000;  // 16 MB/s base of 4 KB values
  c.workload.spike_every_s = 5;
  c.workload.spike_dur_s = 2;
  c.workload.spike_mult = 10;  // 160 MB/s spikes: far past the tiny LSM
  RunResult r = RunBenchmark(c);
  EXPECT_EQ(r.mixed_run, 1);
  EXPECT_GT(r.scheduled_ops, 0u);
  EXPECT_GT(r.completed_ops, 0u);
  EXPECT_GT(r.deadline_misses, 0u);
  EXPECT_GT(r.stall_events + r.slowdown_events, 0u);
  // Arrival-based latency includes queueing delay, so it can only dominate.
  EXPECT_GE(r.arrival_p99_us, r.service_p99_us);
  EXPECT_GE(r.arrival_p999_us, r.service_p999_us);
  // Every scheduled arrival is accounted: completed or abandoned.
  EXPECT_EQ(r.scheduled_ops, r.completed_ops + r.abandoned_ops);
}

TEST(OpenLoopTest, ClosedModeArrivalEqualsService) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.workload.type = WorkloadConfig::Type::kMixed;
  c.workload.duration = FromSecs(3);
  c.workload.arrival = Arrival::kClosed;
  RunResult r = RunBenchmark(c);
  EXPECT_EQ(r.mixed_run, 1);
  EXPECT_EQ(r.scheduled_ops, 0u);  // no schedule exists closed-loop
  EXPECT_GT(r.completed_ops, 0u);
  // With no arrival schedule both views measure the same op spans.
  EXPECT_DOUBLE_EQ(r.arrival_p50_us, r.service_p50_us);
  EXPECT_DOUBLE_EQ(r.arrival_p99_us, r.service_p99_us);
}

TEST(OpenLoopTest, TtlChurnIssuesDeletes) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.workload.type = WorkloadConfig::Type::kMixed;
  c.workload.duration = FromSecs(5);
  c.workload.arrival = Arrival::kPoisson;
  c.workload.arrival_rate = 2000;
  c.workload.ttl_frac = 0.5;
  c.workload.ttl_s = 0.5;
  RunResult r = RunBenchmark(c);
  EXPECT_GT(r.ttl_deletes, 0u);
  EXPECT_GT(r.mixed_puts, 0u);
}

TEST(OpenLoopTest, DiurnalTroughIsQuieterThanPeak) {
  // One full diurnal period; the first quarter (trough) must schedule fewer
  // arrivals than the middle half (peak) — the curve actually varies.
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.workload.type = WorkloadConfig::Type::kMixed;
  c.workload.duration = FromSecs(12);
  c.workload.arrival = Arrival::kDiurnal;
  c.workload.arrival_rate = 2000;
  c.workload.diurnal_period_s = 12;
  c.workload.diurnal_min_frac = 0.1;
  RunResult r = RunBenchmark(c);
  ASSERT_GT(r.per_sec_write_kops.size(), 8u);
  double early = 0, mid = 0;
  for (int i = 0; i < 3; i++) early += r.per_sec_write_kops[i];
  for (int i = 4; i < 7; i++) mid += r.per_sec_write_kops[i];
  EXPECT_LT(early, mid);
}

TEST(MultiTenantMixedTest, DistinctProfilesPerTenant) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.workload.type = WorkloadConfig::Type::kMixed;
  c.workload.duration = FromSecs(4);
  c.workload.tenants = 2;
  c.workload.arrival = Arrival::kPoisson;
  c.workload.arrival_rate = 4000;
  std::string err;
  ASSERT_TRUE(ParseWorkloadMix("write-heavy,dist=zipfian,theta=0.99;"
                               "get=50,scan=50,scanlen=32,dist=hotspot",
                               &c.workload.profiles, &err))
      << err;
  c.workload.mix_spec = "t0=write-heavy-zipf;t1=scan-hotspot";
  RunResult r = RunBenchmark(c);
  ASSERT_EQ(r.tenants.size(), 2u);
  // Tenant 0 writes, tenant 1 only reads/scans.
  EXPECT_GT(r.tenants[0].puts, 0u);
  EXPECT_GT(r.tenants[0].gets, 0u);
  EXPECT_EQ(r.tenants[1].puts, 0u);
  EXPECT_GT(r.tenants[1].scans, 0u);
  EXPECT_GT(r.tenants[0].scheduled_ops, 0u);
  EXPECT_GT(r.tenants[1].scheduled_ops, 0u);
}

// Acceptance: a pinned-seed open-loop Zipfian run reports per-tenant
// p50/p99/p999 measured from scheduled arrival time and is byte-identical
// across same-seed reruns.
TEST(OpenLoopTest, SameSeedReportIsByteIdentical) {
  auto make = [] {
    BenchConfig c;
    c.scale = 0.03125;
    c.sut.kind = SystemKind::kKvaccel;
    c.sut.compaction_threads = 1;
    c.workload.type = WorkloadConfig::Type::kMixed;
    c.workload.duration = FromSecs(5);
    c.workload.tenants = 2;
    c.workload.arrival = Arrival::kPoisson;
    c.workload.arrival_rate = 4000;
    c.workload.default_profile.dist = KeyDist::kZipfian;
    c.workload.default_profile.zipf_theta = 0.99;
    c.workload.ttl_frac = 0.1;
    c.workload.ttl_s = 1;
    return c;
  };
  RunResult a = RunBenchmark(make());
  RunResult b = RunBenchmark(make());
  const std::string ra = JsonReportString(make(), {a});
  const std::string rb = JsonReportString(make(), {b});
  EXPECT_EQ(ra, rb);
  EXPECT_NE(ra.find("\"open_loop\""), std::string::npos);
  ASSERT_EQ(a.tenants.size(), 2u);
  for (const TenantSummary& t : a.tenants) {
    EXPECT_GT(t.scheduled_ops, 0u);
    EXPECT_GT(t.arrival_p50_us, 0);
    EXPECT_GT(t.arrival_p99_us, 0);
    EXPECT_GT(t.arrival_p999_us, 0);
    EXPECT_GE(t.arrival_p999_us, t.arrival_p50_us);
  }
}

// The fixed generator is wired into the classic workloads' key choice too:
// a skewed fillrandom stays deterministic, and on a read-bearing mix the
// popularity shape is observable (reads hit different keys -> different
// world evolution). Pure-put runs are intentionally not compared: the sim's
// write path costs only sizes, so key choice cannot show up there.
TEST(SkewedWriterTest, ZipfianKeyChoiceIsDeterministicAndDistinct) {
  auto fill = [](KeyDist dist) {
    BenchConfig c;
    c.scale = 0.03125;
    c.sut.kind = SystemKind::kRocksDB;
    c.workload.duration = FromSecs(3);
    c.workload.default_profile.dist = dist;
    c.workload.default_profile.zipf_theta = 0.99;
    return RunBenchmark(c);
  };
  RunResult z1 = fill(KeyDist::kZipfian);
  RunResult z2 = fill(KeyDist::kZipfian);
  EXPECT_GT(z1.write_kops, 0);
  EXPECT_DOUBLE_EQ(z1.write_kops, z2.write_kops);
  EXPECT_EQ(z1.metrics.ToJson(), z2.metrics.ToJson());

  auto mixed = [](KeyDist dist) {
    BenchConfig c;
    c.scale = 0.03125;
    c.sut.kind = SystemKind::kRocksDB;
    c.workload.type = WorkloadConfig::Type::kMixed;
    c.workload.duration = FromSecs(3);
    c.workload.default_profile.mix = OpMix{50, 50, 0, 0, 64};
    c.workload.default_profile.dist = dist;
    c.workload.default_profile.zipf_theta = 0.99;
    return RunBenchmark(c);
  };
  RunResult z = mixed(KeyDist::kZipfian);
  RunResult u = mixed(KeyDist::kUniform);
  EXPECT_GT(z.mixed_gets, 0u);
  EXPECT_NE(z.metrics.ToJson(), u.metrics.ToJson());
}

}  // namespace
}  // namespace kvaccel::harness
