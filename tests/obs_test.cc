// Observability subsystem tests: JSON writer, metrics registry, tracer,
// coalescing spans, Chrome trace serialization, and the end-to-end run
// artifacts (--trace_out / --json_out equivalents through RunBenchmark).
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/report.h"
#include "harness/report_json.h"
#include "harness/workload.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/sim_env.h"

namespace kvaccel {
namespace {

using harness::BenchConfig;
using harness::RunBenchmark;
using harness::RunResult;
using harness::SystemKind;
using harness::WorkloadConfig;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------- JsonWriter ----------------

TEST(JsonWriterTest, ObjectsArraysAndFieldTypes) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("s", "text");
  w.Field("u", static_cast<uint64_t>(18446744073709551615ull));
  w.Field("i", static_cast<int64_t>(-42));
  w.Field("d", 1.5);
  w.Field("b", true);
  w.Key("arr");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.BeginObject();
  w.Field("nested", false);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"text\",\"u\":18446744073709551615,\"i\":-42,"
            "\"d\":1.5,\"b\":true,\"arr\":[1,2,{\"nested\":false}]}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  std::string out;
  obs::JsonWriter::Escape("a\"b\\c\nd\te\x01", &out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeZero) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(0.25);
  w.EndArray();
  EXPECT_EQ(w.str(), "[0,0,0.25]");
}

TEST(JsonWriterTest, EmptyContainers) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.Key("o");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

// ---------------- MetricsRegistry ----------------

TEST(MetricsRegistryTest, NativeInstrumentsSnapshot) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("lsm.flush.count");
  c->Inc();
  c->Inc(4);
  reg.GetGauge("kvaccel.redirect.active")->Set(1.0);
  Histogram* h = reg.GetHistogram("db.put_latency_ns");
  for (int i = 1; i <= 100; i++) h->Add(static_cast<uint64_t>(i) * 1000);

  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("lsm.flush.count"), 5u);
  EXPECT_EQ(snap.gauges.at("kvaccel.redirect.active"), 1.0);
  const obs::HistogramSummary& hs = snap.histograms.at("db.put_latency_ns");
  EXPECT_EQ(hs.count, 100u);
  EXPECT_EQ(hs.min, 1000u);
  EXPECT_EQ(hs.max, 100000u);
  EXPECT_GT(hs.p99, hs.p50);
}

TEST(MetricsRegistryTest, StablePointersAcrossRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("a");
  // Registering many more must not invalidate the first pointer (map nodes).
  for (int i = 0; i < 100; i++) {
    reg.GetCounter("x." + std::to_string(i));
  }
  a->Inc(7);
  EXPECT_EQ(reg.GetCounter("a"), a);
  EXPECT_EQ(reg.Snapshot().counters.at("a"), 7u);
}

TEST(MetricsRegistryTest, SourcesMirrorAndOverride) {
  obs::MetricsRegistry reg;
  reg.GetCounter("shared")->Set(1);
  uint64_t live = 41;
  reg.AddSource([&live](obs::MetricsSnapshot* snap) {
    snap->SetCounter("mirrored", live);
    snap->SetCounter("shared", 99);  // sources win over natives
  });
  live = 42;
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("mirrored"), 42u);  // read at snapshot time
  EXPECT_EQ(snap.counters.at("shared"), 99u);
}

TEST(MetricsRegistryTest, SnapshotJsonIsSortedAndDeterministic) {
  obs::MetricsRegistry reg;
  reg.GetCounter("z.last")->Set(1);
  reg.GetCounter("a.first")->Set(2);
  reg.GetGauge("m.gauge")->Set(0.5);
  std::string one = reg.Snapshot().ToJson();
  std::string two = reg.Snapshot().ToJson();
  EXPECT_EQ(one, two);
  // Sorted by name regardless of registration order.
  EXPECT_LT(one.find("a.first"), one.find("z.last"));
  EXPECT_NE(one.find("\"counters\""), std::string::npos);
  EXPECT_NE(one.find("\"gauges\""), std::string::npos);
  EXPECT_NE(one.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyHistogramSummaryIsZeros) {
  Histogram h;
  obs::HistogramSummary s = obs::HistogramSummary::From(h);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.avg, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p999, 0.0);
}

// ---------------- Tracer ----------------

TEST(TracerTest, EnvHasNoTracerByDefault) {
  sim::SimEnv env;
  EXPECT_EQ(env.tracer(), nullptr);
}

TEST(TracerTest, TrackRegistrationDedups) {
  sim::SimEnv env;
  obs::Tracer tracer(&env);
  uint32_t a = tracer.RegisterTrack("lsm.wal");
  uint32_t b = tracer.RegisterTrack("lsm.flush");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.RegisterTrack("lsm.wal"), a);
  EXPECT_EQ(tracer.num_tracks(), 2u);
}

TEST(TracerTest, RecordsAndCountsEvents) {
  sim::SimEnv env;
  obs::Tracer tracer(&env);
  uint32_t t = tracer.RegisterTrack("test");
  tracer.Begin(t, "stall");
  tracer.End(t, "stall");
  tracer.Complete(t, "flush", 100, 250, 4096);
  tracer.Instant(t, "memtable.switch");
  EXPECT_EQ(tracer.num_events(), 4u);
  EXPECT_EQ(tracer.CountEvents("stall"), 2u);
  EXPECT_TRUE(tracer.HasEvent("flush"));
  EXPECT_TRUE(tracer.HasEvent("memtable.switch"));
  EXPECT_FALSE(tracer.HasEvent("compaction"));
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TracerTest, BoundedBufferDropsInsteadOfGrowing) {
  sim::SimEnv env;
  obs::Tracer tracer(&env, /*max_events=*/4);
  uint32_t t = tracer.RegisterTrack("test");
  for (int i = 0; i < 10; i++) tracer.Instant(t, "tick");
  EXPECT_EQ(tracer.num_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
}

TEST(TracerTest, CompleteClampsBackwardsSpan) {
  sim::SimEnv env;
  obs::Tracer tracer(&env);
  uint32_t t = tracer.RegisterTrack("test");
  tracer.Complete(t, "weird", 500, 100);  // end < start → zero duration
  EXPECT_EQ(tracer.num_events(), 1u);
}

TEST(CoalescingSpanTest, MergesWithinGapSplitsBeyond) {
  sim::SimEnv env;
  obs::Tracer tracer(&env);
  uint32_t t = tracer.RegisterTrack("ssd.pcie");
  obs::CoalescingSpan span;
  span.Init(&tracer, t, "pcie.busy", /*max_gap=*/100);
  span.Add(0, 50, 10);
  span.Add(60, 120, 10);    // gap 10 < 100 → merged
  span.Add(130, 180, 10);   // still merged
  EXPECT_EQ(tracer.CountEvents("pcie.busy"), 0u);  // interval still open
  span.Add(1000, 1100, 5);  // gap 820 > 100 → first span emitted
  EXPECT_EQ(tracer.CountEvents("pcie.busy"), 1u);
  span.Flush();
  EXPECT_EQ(tracer.CountEvents("pcie.busy"), 2u);
  span.Flush();  // idempotent
  EXPECT_EQ(tracer.CountEvents("pcie.busy"), 2u);
}

TEST(CoalescingSpanTest, UninitializedIsInert) {
  obs::CoalescingSpan span;
  span.Add(0, 10, 1);  // must not crash
  span.Flush();
}

TEST(TracerTest, ChromeTraceFormat) {
  sim::SimEnv env;
  obs::Tracer tracer(&env);
  uint32_t t = tracer.RegisterTrack("lsm.flush");
  tracer.Complete(t, "flush", 1000, 3500, 4096);
  bool flushed = false;
  tracer.AddFlusher([&flushed] { flushed = true; });

  std::string path = testing::TempDir() + "obs_test_trace.json";
  std::string error;
  ASSERT_TRUE(tracer.WriteChromeTrace(path, &error)) << error;
  EXPECT_TRUE(flushed);
  std::string body = ReadFile(path);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"lsm.flush\""), std::string::npos);  // track
  // 1000 ns → 1.000 µs, duration 2500 ns → 2.500 µs, bytes in args.
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ts\":1.000,\"dur\":2.500"), std::string::npos);
  EXPECT_NE(body.find("\"bytes\":4096"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TracerTest, WriteToUnwritablePathFails) {
  sim::SimEnv env;
  obs::Tracer tracer(&env);
  std::string error;
  EXPECT_FALSE(tracer.WriteChromeTrace("/nonexistent-dir/x/trace.json",
                                       &error));
  EXPECT_FALSE(error.empty());
}

// ---------------- End-to-end run artifacts ----------------

BenchConfig SmallKvaccelConfig() {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kKvaccel;
  c.sut.compaction_threads = 1;
  c.workload.type = WorkloadConfig::Type::kFillRandom;
  c.workload.duration = FromSecs(6);
  return c;
}

TEST(RunArtifactsTest, TraceContainsSubsystemSpans) {
  BenchConfig c = SmallKvaccelConfig();
  c.trace_out = testing::TempDir() + "obs_e2e_trace.json";
  RunResult r = RunBenchmark(c);
  EXPECT_GT(r.write_kops, 0.0);

  std::string body = ReadFile(c.trace_out);
  ASSERT_FALSE(body.empty());
  // Track metadata for every layer.
  for (const char* track : {"ssd.pcie", "ssd.nand-ch0", "lsm.wal",
                            "lsm.flush", "lsm.compaction-0", "devlsm",
                            "kvaccel"}) {
    EXPECT_NE(body.find(std::string("\"name\":\"") + track + "\""),
              std::string::npos)
        << "missing track " << track;
  }
  // Span/instant events from the LSM, SSD and KVACCEL layers.
  for (const char* name :
       {"flush", "compaction.read", "compaction.merge", "compaction.write",
        "memtable.switch", "wal.append", "pcie.busy", "nand.busy"}) {
    EXPECT_NE(body.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << "missing event " << name;
  }
  std::remove(c.trace_out.c_str());
}

TEST(RunArtifactsTest, TracingOffProducesNoFile) {
  BenchConfig c = SmallKvaccelConfig();
  c.workload.duration = FromSecs(2);
  RunResult r = RunBenchmark(c);  // trace_out empty → tracer never built
  EXPECT_GT(r.write_kops, 0.0);
}

TEST(RunArtifactsTest, MetricsSnapshotCoversAllLayers) {
  BenchConfig c = SmallKvaccelConfig();
  RunResult r = RunBenchmark(c);
  const auto& counters = r.metrics.counters;
  for (const char* name :
       {"lsm.writes_total", "lsm.flush.count", "lsm.compaction.bytes_written",
        "lsm.block_cache.hits", "lsm.block_cache.capacity_bytes",
        "ssd.link.busy_ns", "ssd.nand.bytes_written", "ssd.ftl.gc_runs",
        "kvaccel.detector.checks", "kvaccel.redirect.writes",
        "devlsm.puts"}) {
    EXPECT_TRUE(counters.count(name)) << "missing counter " << name;
  }
  EXPECT_GT(counters.at("lsm.writes_total"), 0u);
  EXPECT_GT(counters.at("ssd.nand.bytes_written"), 0u);
  EXPECT_GT(counters.at("kvaccel.detector.checks"), 0u);
  EXPECT_GT(counters.at("lsm.block_cache.capacity_bytes"), 0u);
  EXPECT_TRUE(r.metrics.gauges.count("kvaccel.redirect.active"));
  EXPECT_TRUE(r.metrics.gauges.count("lsm.block_cache.hit_rate"));
  EXPECT_TRUE(r.metrics.histograms.count("db.put_latency_ns"));
  EXPECT_GT(r.metrics.histograms.at("db.put_latency_ns").count, 0u);
}

TEST(RunArtifactsTest, BlockCacheStatsSurfaceOnReadWorkload) {
  BenchConfig c;
  c.scale = 0.03125;
  c.sut.kind = SystemKind::kRocksDB;
  c.sut.compaction_threads = 1;
  c.workload.type = WorkloadConfig::Type::kReadWhileWriting;
  c.workload.duration = FromSecs(6);
  RunResult r = RunBenchmark(c);
  EXPECT_GT(r.read_kops, 0.0);
  // Reads that reach the SSTs populate the block cache; hit rate must be a
  // valid fraction and consistent with the raw counts.
  EXPECT_GT(r.cache_hits + r.cache_misses, 0u);
  EXPECT_GE(r.cache_hit_rate, 0.0);
  EXPECT_LE(r.cache_hit_rate, 1.0);
  EXPECT_EQ(r.metrics.counters.at("lsm.block_cache.hits"), r.cache_hits);
  EXPECT_EQ(r.metrics.counters.at("lsm.block_cache.misses"), r.cache_misses);
}

TEST(RunArtifactsTest, JsonReportIsValidAndDeterministic) {
  BenchConfig c = SmallKvaccelConfig();
  c.workload.duration = FromSecs(4);
  RunResult r1 = RunBenchmark(c);
  RunResult r2 = RunBenchmark(c);
  std::string report1 = harness::JsonReportString(c, {r1});
  std::string report2 = harness::JsonReportString(c, {r2});
  EXPECT_EQ(report1, report2);  // identical seeds → byte-identical reports
  EXPECT_NE(report1.find("\"schema\":\"kvaccel-run-v1\""), std::string::npos);
  EXPECT_NE(report1.find("\"config\""), std::string::npos);
  EXPECT_NE(report1.find("\"metrics\""), std::string::npos);
  EXPECT_NE(report1.find("\"per_second\""), std::string::npos);
  EXPECT_NE(report1.find("\"shape_checks\""), std::string::npos);
}

TEST(RunArtifactsTest, TraceIsDeterministicAcrossRuns) {
  BenchConfig c = SmallKvaccelConfig();
  c.workload.duration = FromSecs(3);
  c.trace_out = testing::TempDir() + "obs_det_a.json";
  RunBenchmark(c);
  std::string a = ReadFile(c.trace_out);
  std::remove(c.trace_out.c_str());
  c.trace_out = testing::TempDir() + "obs_det_b.json";
  RunBenchmark(c);
  std::string b = ReadFile(c.trace_out);
  std::remove(c.trace_out.c_str());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace kvaccel
