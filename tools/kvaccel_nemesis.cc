// kvaccel_nemesis: command-line driver for the model-oracle nemesis harness.
//
//   build/tools/kvaccel_nemesis --cycles=30 --nemesis_seed=1317456661
//   build/tools/kvaccel_nemesis --replay=/tmp/dumps/nemesis-1317456661.trace
//
// Runs seeded crash-recovery cycles against a full KVACCEL stack and checks
// every recovery against the in-memory model oracle (see src/check/nemesis.h
// and DESIGN.md §9). The same seed replays the identical schedule, so a CI
// failure is reproducible from the printed header alone; --replay does it
// from a dumped divergence trace in one command.
//
// Flags:
//   --nemesis_seed=N    schedule seed (default 0x5EED)
//   --cycles=N          crash-recovery cycles (default 30)
//   --ops_per_cycle=N   operations attempted per cycle (default 150)
//   --key_space=N       key draw range (default 400)
//   --value_size=N      value bytes (default 4096)
//   --shards=N          run against a ShardedKvaccelDB with N shards; crash
//                       cycles may arm dual kill sites (mid-rollback on one
//                       shard, mid-flush on another) and recovery checks
//                       cross-shard iterator order (default 1 = plain stack)
//   --ha                drive a two-node replicated pair: every cycle kills
//                       the pair, promotes the backup, verifies it against
//                       the oracle, wipes the dead node and swaps roles
//   --repl_ack=MODE     sync (default: every acked write must survive
//                       failover) or async (bounded, reported loss tail)
//   --net_partition     partition nemesis (implies --ha, sync acks): rotate
//                       symmetric cuts, asymmetric ack-loss cuts, brief
//                       healed blips and flapping links; verify fencing
//                       (no write acked on both sides of a split), epoch
//                       bumps, stale-epoch depose and delta-resync rejoin
//   --resync_mode=MODE  reconciliation transport for the rejoin step:
//                       delta (default: flushed state via the ingest path,
//                       zero write-path bytes) or wal (full replay)
//   --ndp               force every compaction through the device COMPACT
//                       path and arm the crash.ndp.* kill points (the first
//                       cycles rotate through all of them) plus transient
//                       COMPACT rejections (DESIGN.md §13)
//   --list_fault_sites  print every registered fault/crash site and exit
//   --trace_dump_dir=D  dump the op trace here on divergence
//   --replay=FILE       load the schedule from a dumped trace's header
//                       (overrides the schedule flags above)
//
// Exit status: 0 = every cycle matched the oracle, 1 = divergence,
// 2 = usage trouble.
#include <cstdio>
#include <cstring>
#include <string>

#include "check/nemesis.h"
#include "harness/flags.h"
#include "sim/fault.h"

using namespace kvaccel;
using harness::ParseFlagInt;
using harness::ParseFlagUint64;

namespace {

void Usage() {
  fprintf(stderr,
          "usage: kvaccel_nemesis [--nemesis_seed=N] [--cycles=N]\n"
          "  [--ops_per_cycle=N] [--key_space=N] [--value_size=N]\n"
          "  [--shards=N] [--ha] [--repl_ack=sync|async]\n"
          "  [--net_partition] [--resync_mode=delta|wal] [--ndp]\n"
          "  [--list_fault_sites] [--trace_dump_dir=DIR]\n"
          "  [--replay=TRACE_FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  check::NemesisOptions opts;
  std::string replay;
  std::string trace_dump_dir;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (strncmp(arg, "--nemesis_seed=", 15) == 0) {
      opts.seed = ParseFlagUint64(arg + 15, "--nemesis_seed");
    } else if (strncmp(arg, "--cycles=", 9) == 0) {
      opts.cycles =
          static_cast<int>(ParseFlagInt(arg + 9, "--cycles", /*min_value=*/1));
    } else if (strncmp(arg, "--ops_per_cycle=", 16) == 0) {
      opts.ops_per_cycle = static_cast<int>(
          ParseFlagInt(arg + 16, "--ops_per_cycle", /*min_value=*/1));
    } else if (strncmp(arg, "--key_space=", 12) == 0) {
      opts.key_space = ParseFlagUint64(arg + 12, "--key_space");
    } else if (strncmp(arg, "--value_size=", 13) == 0) {
      opts.value_size = static_cast<uint32_t>(
          ParseFlagInt(arg + 13, "--value_size", /*min_value=*/1));
    } else if (strncmp(arg, "--shards=", 9) == 0) {
      opts.shards =
          static_cast<int>(ParseFlagInt(arg + 9, "--shards", /*min_value=*/1));
    } else if (strcmp(arg, "--ha") == 0) {
      opts.ha = true;
    } else if (strcmp(arg, "--ndp") == 0) {
      opts.ndp = true;
    } else if (strncmp(arg, "--repl_ack=", 11) == 0) {
      const char* mode = arg + 11;
      if (strcmp(mode, "sync") == 0) {
        opts.repl_ack = 0;
      } else if (strcmp(mode, "async") == 0) {
        opts.repl_ack = 1;
      } else {
        fprintf(stderr, "--repl_ack must be sync or async, got %s\n", mode);
        return 2;
      }
    } else if (strcmp(arg, "--net_partition") == 0) {
      opts.net_partition = true;
      opts.ha = true;
    } else if (strncmp(arg, "--resync_mode=", 14) == 0) {
      const char* mode = arg + 14;
      if (strcmp(mode, "delta") == 0) {
        opts.resync_mode = 1;
      } else if (strcmp(mode, "wal") == 0) {
        opts.resync_mode = 0;
      } else {
        fprintf(stderr, "--resync_mode must be delta or wal, got %s\n", mode);
        return 2;
      }
    } else if (strcmp(arg, "--list_fault_sites") == 0) {
      for (const auto& site : sim::KnownFaultSites()) {
        printf("%-28s %s\n", site.site, site.what);
      }
      return 0;
    } else if (strncmp(arg, "--trace_dump_dir=", 17) == 0) {
      trace_dump_dir = arg + 17;
    } else if (strncmp(arg, "--replay=", 9) == 0) {
      replay = arg + 9;
    } else if (strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
      return 2;
    }
  }
  if (!replay.empty()) {
    Status s = check::ParseNemesisTrace(replay, &opts);
    if (!s.ok()) {
      fprintf(stderr, "replay %s: %s\n", replay.c_str(),
              s.ToString().c_str());
      return 2;
    }
    printf("replaying schedule from %s\n", replay.c_str());
  }
  opts.trace_dump_dir = trace_dump_dir;

  printf("nemesis: seed=%llu cycles=%d ops_per_cycle=%d key_space=%llu "
         "value_size=%u shards=%d ha=%d repl_ack=%s net_partition=%d "
         "resync_mode=%s ndp=%d\n",
         static_cast<unsigned long long>(opts.seed), opts.cycles,
         opts.ops_per_cycle, static_cast<unsigned long long>(opts.key_space),
         opts.value_size, opts.shards, opts.ha ? 1 : 0,
         opts.repl_ack == 1 ? "async" : "sync", opts.net_partition ? 1 : 0,
         opts.resync_mode != 0 ? "delta" : "wal", opts.ndp ? 1 : 0);

  check::NemesisResult r = check::RunNemesis(opts);
  printf("cycles=%d crashes=%d ops=%llu\n", r.cycles_run, r.crashes,
         static_cast<unsigned long long>(r.ops_executed));
  if (opts.ha) {
    printf("failovers=%d lost_entries=%llu drained=%llu dev_fallbacks=%llu\n",
           r.failovers, static_cast<unsigned long long>(r.ha_lost_entries),
           static_cast<unsigned long long>(r.ha_drained_entries),
           static_cast<unsigned long long>(r.ha_backup_dev_fallbacks));
  }
  if (opts.net_partition) {
    printf("partitions=%d rejoins=%d fenced_rejects=%llu "
           "quarantined_keys=%llu\n",
           r.partitions, r.rejoins,
           static_cast<unsigned long long>(r.ha_fenced_rejects),
           static_cast<unsigned long long>(r.ha_quarantined_keys));
    printf("resync: entries=%llu bytes=%llu write_path_bytes=%llu "
           "wal_replay_bytes=%llu\n",
           static_cast<unsigned long long>(r.ha_resync_entries),
           static_cast<unsigned long long>(r.ha_resync_bytes),
           static_cast<unsigned long long>(r.ha_write_path_bytes),
           static_cast<unsigned long long>(r.ha_wal_replay_bytes));
  }
  if (r.ok) {
    printf("every recovery matched the model oracle\n");
    return 0;
  }
  fprintf(stderr, "DIVERGENCE: %s\n", r.error.c_str());
  if (!r.trace_path.empty()) {
    fprintf(stderr, "trace dumped to %s — replay with --replay=%s\n",
            r.trace_path.c_str(), r.trace_path.c_str());
  } else {
    fprintf(stderr, "re-run with --trace_dump_dir=DIR to dump the trace\n");
  }
  return 1;
}
