#!/usr/bin/env python3
"""Sanity-check a Chrome trace-event JSON produced by --trace_out.

Usage: check_trace.py TRACE.json

Asserts the trace parses as JSON and contains at least one flush span, one
compaction span and one stall window (the KVACCEL detector's redirect window
is named "stall.redirect", so substring matching covers both the baselines'
plain "stall" B/E pairs and the accelerator's detected-stall windows).
Exits non-zero with a diagnostic when a required event class is missing.
"""
import collections
import json
import sys


def main():
    if len(sys.argv) != 2:
        print("usage: check_trace.py TRACE.json", file=sys.stderr)
        return 2
    path = sys.argv[1]
    with open(path, "rb") as f:
        trace = json.load(f)

    events = trace.get("traceEvents", [])
    if not events:
        print(f"{path}: no traceEvents", file=sys.stderr)
        return 1

    by_name = collections.Counter(
        e.get("name", "") for e in events if e.get("ph") != "M"
    )
    tracks = sum(1 for e in events if e.get("name") == "thread_name")

    required = ["flush", "compaction", "stall"]
    missing = []
    for substr in required:
        count = sum(n for name, n in by_name.items() if substr in name)
        print(f"{substr:<12}: {count} events")
        if count == 0:
            missing.append(substr)

    dropped = trace.get("otherData", {}).get("dropped_events", 0)
    print(f"total       : {sum(by_name.values())} events, "
          f"{tracks} tracks, {dropped} dropped")

    if missing:
        print(f"{path}: missing required events: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    print(f"{path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
