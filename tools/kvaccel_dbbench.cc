// kvaccel_dbbench: db_bench-style command-line driver over the simulation.
//
//   build/tools/kvaccel_dbbench --system=kvaccel --workload=fillrandom \
//       --seconds=60 --threads=1 --scale=0.125 --value_size=4096
//
// Flags:
//   --system=rocksdb|adoc|kvaccel     system under test (default rocksdb)
//   --workload=fillrandom|readwhilewriting|seekrandom|mixed
//                      (default fillrandom; mixed = the open-loop workload
//                      matrix, DESIGN.md §14)
//   --seconds=N        measurement window, virtual seconds (default 60)
//   --scale=F          size scale; 1.0 = paper scale (default 0.125)
//   --threads=N        compaction threads (default 1)
//   --value_size=N     value bytes (default 4096)
//   --key_space=N      key draw range (default 2^31)
//   --read_threads=N   readers for readwhilewriting (default 1)
//   --writer_threads=N concurrent writer actors (default 1)
//   --batch_size=N     entries per WriteBatch per writer op (default 1)
//   --rollback=lazy|eager|disabled    KVACCEL rollback scheme (default lazy)
//   --no_slowdown      disable the baselines' delayed-write mechanism
//   --seed=N           workload seed (default 42)
//   --fault_profile=P  arm a canned fault profile: flaky-nvme | bitrot |
//                      power-cut | devlsm-dead (see harness/fault_profiles.h)
//   --fault_seed=N     fault injector RNG seed (default 1); the same
//                      profile+seed reproduces the identical fault sequence
//   --series           print per-second throughput / PCIe series
//   --trace_out=FILE   write a Chrome trace-event JSON of the run (open in
//                      Perfetto / chrome://tracing); off when omitted
//   --json_out=FILE    write the machine-readable kvaccel-run-v1 report
//                      (metrics snapshot + per-second series)
//   --nemesis_seed=N   nemesis schedule seed echoed into the report config
//                      block (0 = none; see tools/kvaccel_nemesis)
//   --trace_dump_dir=D nemesis divergence-dump directory, echoed into the
//                      report config block
//   --db_dump_dir=D    export the final simulated file-system image to a
//                      host directory after Close, for offline inspection
//                      with tools/kvaccel_check
//   --max_subcompactions=N  cap on range-partitioned subcompactions per
//                      compaction job (0 = DbOptions default; 1 disables
//                      splitting entirely)
//   --compaction_rate_limit=F  deep-compaction I/O cap as a fraction of
//                      device NAND bandwidth, in (0, 1]; 0 = unlimited
//   --nand_mbps=F      override the simulated NAND bandwidth in MB/s
//                      (ablation hook; 0 = preset 630 MB/s)
//   --shards=N         KVACCEL only: shard-per-core engine with N shards,
//                      one SSD namespace/WAL/memtable/Detector each
//                      (default 1 = plain single-shard facade)
//   --tenants=N        carve the key space into N per-tenant slices with at
//                      least one writer each; per-tenant p50/p99 reported
//   --shard_partition=hash|range  key-to-shard mapping (default hash)
//   --redirect_policy=global|per_shard  Dev-LSM capacity competition policy
//                      (default global)
//   --arbiter_share=F  fair-share bandwidth arbiter serving rate as a
//                      fraction of NAND bandwidth in [0, 1]; 0 disables
//   --ndp=off|auto|force  KVACCEL only: device-offloaded compaction
//                      (DESIGN.md §13). auto = placement planner chooses
//                      host vs device per job; force = every job offloads
//                      (default off)
//   --ndp_cores=N      dedicated NDP cores on the device (0 = share the
//                      firmware core; default 2)
//   --ha               KVACCEL only (shards=1): open a two-node replicated
//                      pair (DESIGN.md §12); after the window the primary is
//                      "lost" and the backup's promotion is measured into
//                      the report's ha.failover block
//   --repl_ack=sync|async  HA ack discipline: sync = acks wait for the
//                      backup (no acked write lost), async = bounded tail
//                      may be lost at cutover (default sync)
//   --net_mbps=F       HA interconnect bandwidth in MB/s (default 1250)
//   --net_latency_us=F HA interconnect one-way latency (default 30)
//   --lease_ms=F       HA lease duration; a partitioned primary self-fences
//                      once it goes this long without a backup round trip
//                      (default 50)
//   --heartbeat_ms=F   HA heartbeat/lease-renewal period (default 10)
//   --fence_epoch=N    fencing epoch the pair starts at; Open adopts the
//                      max of this and any durable FENCE epochs on either
//                      node (default 1)
//   --net_partition=START:DUR  HA only: cut the interconnect symmetrically
//                      START seconds into the window for DUR seconds. The
//                      primary self-fences on lease lapse (writers back off
//                      through the Busy window), and the post-run failover
//                      becomes a full partition drill: promote under a
//                      bumped fencing epoch, then reconcile the deposed
//                      node back with the rejoin measurement in the
//                      report's ha.rejoin block
//   --resync_mode=MODE delta (default: rejoin ships flushed state through
//                      the WAL-bypassing ingest path) or wal (full replay
//                      through the write path)
//   --workload_mix=SPEC  mixed only (implies --workload=mixed): ';'-separated
//                      per-tenant op streams, each a preset (write-heavy,
//                      balanced, churn, analytics) or k=v fields (put=, get=,
//                      del=, scan=, scanlen=, dist=uniform|zipfian|hotspot,
//                      theta=, hot_frac=, hot_ops=); tenant t gets segment
//                      t % count
//   --arrival=MODE     closed | poisson | diurnal | spike (default closed).
//                      Open-loop modes schedule arrivals in virtual time and
//                      measure latency from the scheduled tick too, so stall
//                      queueing is not hidden by coordinated omission
//   --arrival_rate=F   total scheduled ops/s across tenants (default 20000)
//   --zipf_theta=F     default-profile Zipfian key popularity, theta in (0,1)
//   --hotspot=FRAC:OPFRAC  default-profile hotspot popularity: the first
//                      FRAC of each tenant slice gets OPFRAC of the draws
//   --ttl_frac=F       fraction of mixed puts tagged with a TTL (default 0)
//   --ttl_s=F          TTL duration in virtual seconds (default 2)
//   --deadline_us=F    arrival-deadline for deadline-miss counters
//                      (default 1000)
//   --list_fault_sites print every registered fault/crash site and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/report_json.h"
#include "harness/workload.h"
#include "sim/fault.h"

using namespace kvaccel;
using namespace kvaccel::harness;

namespace {

bool FlagEq(const char* arg, const char* name, const char** value) {
  size_t n = strlen(name);
  if (strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

void Usage() {
  fprintf(stderr,
          "usage: kvaccel_dbbench [--system=rocksdb|adoc|kvaccel]\n"
          "  [--workload=fillrandom|readwhilewriting|seekrandom|mixed]\n"
          "  [--workload_mix=SPEC] [--arrival=closed|poisson|diurnal|spike]\n"
          "  [--arrival_rate=F] [--zipf_theta=F] [--hotspot=FRAC:OPFRAC]\n"
          "  [--ttl_frac=F] [--ttl_s=F] [--deadline_us=F]\n"
          "  [--seconds=N] [--scale=F] [--threads=N] [--value_size=N]\n"
          "  [--key_space=N] [--read_threads=N] [--writer_threads=N]\n"
          "  [--batch_size=N]\n"
          "  [--rollback=lazy|eager|disabled] [--no_slowdown] [--seed=N]\n"
          "  [--fault_profile=flaky-nvme|bitrot|power-cut|devlsm-dead]\n"
          "  [--fault_seed=N] [--series]\n"
          "  [--trace_out=FILE] [--json_out=FILE]\n"
          "  [--nemesis_seed=N] [--trace_dump_dir=DIR] [--db_dump_dir=DIR]\n"
          "  [--max_subcompactions=N] [--compaction_rate_limit=F]\n"
          "  [--nand_mbps=F] [--shards=N] [--tenants=N]\n"
          "  [--shard_partition=hash|range]\n"
          "  [--redirect_policy=global|per_shard] [--arbiter_share=F]\n"
          "  [--ndp=off|auto|force] [--ndp_cores=N]\n"
          "  [--ha] [--repl_ack=sync|async] [--net_mbps=F]\n"
          "  [--net_latency_us=F] [--net_partition=START:DUR]\n"
          "  [--lease_ms=F] [--heartbeat_ms=F] [--fence_epoch=N]\n"
          "  [--resync_mode=delta|wal] [--list_fault_sites]\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  config.scale = 0.125;
  config.sut.kind = SystemKind::kRocksDB;
  config.sut.compaction_threads = 1;
  config.workload.duration = FromSecs(60);
  bool print_series = false;
  bool saw_zipf = false, saw_hotspot = false;
  std::string json_out;

  for (int i = 1; i < argc; i++) {
    const char* v = nullptr;
    if (FlagEq(argv[i], "--system", &v)) {
      if (strcmp(v, "rocksdb") == 0) {
        config.sut.kind = SystemKind::kRocksDB;
      } else if (strcmp(v, "adoc") == 0) {
        config.sut.kind = SystemKind::kAdoc;
      } else if (strcmp(v, "kvaccel") == 0) {
        config.sut.kind = SystemKind::kKvaccel;
      } else {
        Usage();
        return 2;
      }
    } else if (FlagEq(argv[i], "--workload", &v)) {
      if (strcmp(v, "fillrandom") == 0) {
        config.workload.type = WorkloadConfig::Type::kFillRandom;
      } else if (strcmp(v, "readwhilewriting") == 0) {
        config.workload.type = WorkloadConfig::Type::kReadWhileWriting;
      } else if (strcmp(v, "seekrandom") == 0) {
        config.workload.type = WorkloadConfig::Type::kSeekRandom;
      } else if (strcmp(v, "mixed") == 0) {
        config.workload.type = WorkloadConfig::Type::kMixed;
      } else {
        Usage();
        return 2;
      }
    } else if (FlagEq(argv[i], "--seconds", &v)) {
      config.workload.duration = FromSecs(ParseFlagDouble(v, "--seconds"));
    } else if (FlagEq(argv[i], "--scale", &v)) {
      config.scale = ParseFlagDouble(v, "--scale");
    } else if (FlagEq(argv[i], "--threads", &v)) {
      config.sut.compaction_threads =
          static_cast<int>(ParseFlagInt(v, "--threads", /*min_value=*/1));
    } else if (FlagEq(argv[i], "--value_size", &v)) {
      config.workload.value_size = static_cast<uint32_t>(
          ParseFlagInt(v, "--value_size", /*min_value=*/1));
    } else if (FlagEq(argv[i], "--key_space", &v)) {
      config.workload.key_space = ParseFlagUint64(v, "--key_space");
    } else if (FlagEq(argv[i], "--read_threads", &v)) {
      config.workload.read_threads =
          static_cast<int>(ParseFlagInt(v, "--read_threads"));
    } else if (FlagEq(argv[i], "--writer_threads", &v)) {
      config.workload.writer_threads = static_cast<int>(
          ParseFlagInt(v, "--writer_threads", /*min_value=*/1));
    } else if (FlagEq(argv[i], "--batch_size", &v)) {
      config.workload.batch_size =
          static_cast<int>(ParseFlagInt(v, "--batch_size", /*min_value=*/1));
    } else if (FlagEq(argv[i], "--rollback", &v)) {
      if (strcmp(v, "lazy") == 0) {
        config.sut.rollback = core::RollbackScheme::kLazy;
      } else if (strcmp(v, "eager") == 0) {
        config.sut.rollback = core::RollbackScheme::kEager;
      } else if (strcmp(v, "disabled") == 0) {
        config.sut.rollback = core::RollbackScheme::kDisabled;
      } else {
        Usage();
        return 2;
      }
    } else if (FlagEq(argv[i], "--no_slowdown", &v)) {
      config.sut.enable_slowdown = false;
    } else if (FlagEq(argv[i], "--seed", &v)) {
      config.workload.seed = ParseFlagUint64(v, "--seed");
    } else if (FlagEq(argv[i], "--fault_profile", &v)) {
      config.fault_profile = v;
    } else if (FlagEq(argv[i], "--fault_seed", &v)) {
      config.fault_seed = ParseFlagUint64(v, "--fault_seed");
    } else if (FlagEq(argv[i], "--series", &v)) {
      print_series = true;
    } else if (FlagEq(argv[i], "--trace_out", &v)) {
      config.trace_out = v;
    } else if (FlagEq(argv[i], "--json_out", &v)) {
      json_out = v;
    } else if (FlagEq(argv[i], "--nemesis_seed", &v)) {
      config.nemesis_seed = ParseFlagUint64(v, "--nemesis_seed");
    } else if (FlagEq(argv[i], "--trace_dump_dir", &v)) {
      config.trace_dump_dir = v;
    } else if (FlagEq(argv[i], "--db_dump_dir", &v)) {
      config.db_dump_dir = v;
    } else if (FlagEq(argv[i], "--max_subcompactions", &v)) {
      config.sut.max_subcompactions =
          static_cast<int>(ParseFlagInt(v, "--max_subcompactions"));
    } else if (FlagEq(argv[i], "--compaction_rate_limit", &v)) {
      config.sut.compaction_rate_limit =
          ParseFlagDouble(v, "--compaction_rate_limit");
      if (config.sut.compaction_rate_limit > 1.0) {
        fprintf(stderr, "--compaction_rate_limit must be in [0, 1]\n");
        return 2;
      }
    } else if (FlagEq(argv[i], "--nand_mbps", &v)) {
      config.nand_mbps = ParseFlagDouble(v, "--nand_mbps");
    } else if (FlagEq(argv[i], "--shards", &v)) {
      config.sut.shards =
          static_cast<int>(ParseFlagInt(v, "--shards", /*min_value=*/1));
    } else if (FlagEq(argv[i], "--tenants", &v)) {
      config.workload.tenants =
          static_cast<int>(ParseFlagInt(v, "--tenants", /*min_value=*/1));
    } else if (FlagEq(argv[i], "--shard_partition", &v)) {
      if (strcmp(v, "hash") == 0) {
        config.sut.shard_partition = core::ShardPartition::kHash;
      } else if (strcmp(v, "range") == 0) {
        config.sut.shard_partition = core::ShardPartition::kRange;
      } else {
        Usage();
        return 2;
      }
    } else if (FlagEq(argv[i], "--redirect_policy", &v)) {
      if (strcmp(v, "global") == 0) {
        config.sut.redirect_policy = core::RedirectBudgetPolicy::kGlobal;
      } else if (strcmp(v, "per_shard") == 0) {
        config.sut.redirect_policy = core::RedirectBudgetPolicy::kPerShard;
      } else {
        Usage();
        return 2;
      }
    } else if (FlagEq(argv[i], "--arbiter_share", &v)) {
      config.sut.arbiter_share = ParseFlagDouble(v, "--arbiter_share");
      if (config.sut.arbiter_share > 1.0) {
        fprintf(stderr, "--arbiter_share must be in [0, 1]\n");
        return 2;
      }
    } else if (FlagEq(argv[i], "--ndp", &v)) {
      if (strcmp(v, "off") == 0) {
        config.sut.ndp_mode = ndp::OffloadMode::kOff;
      } else if (strcmp(v, "auto") == 0) {
        config.sut.ndp_mode = ndp::OffloadMode::kAuto;
      } else if (strcmp(v, "force") == 0) {
        config.sut.ndp_mode = ndp::OffloadMode::kForce;
      } else {
        fprintf(stderr, "--ndp must be off, auto or force, got %s\n", v);
        return 2;
      }
    } else if (FlagEq(argv[i], "--ndp_cores", &v)) {
      config.sut.ndp_cores =
          static_cast<int>(ParseFlagInt(v, "--ndp_cores"));
    } else if (strcmp(argv[i], "--ha") == 0) {
      config.sut.ha = true;
    } else if (FlagEq(argv[i], "--repl_ack", &v)) {
      if (strcmp(v, "sync") == 0) {
        config.sut.repl_ack_async = false;
      } else if (strcmp(v, "async") == 0) {
        config.sut.repl_ack_async = true;
      } else {
        fprintf(stderr, "--repl_ack must be sync or async, got %s\n", v);
        return 2;
      }
    } else if (FlagEq(argv[i], "--net_mbps", &v)) {
      config.sut.net_mbps = ParseFlagDouble(v, "--net_mbps");
    } else if (FlagEq(argv[i], "--net_latency_us", &v)) {
      config.sut.net_latency_us = ParseFlagDouble(v, "--net_latency_us");
    } else if (FlagEq(argv[i], "--lease_ms", &v)) {
      config.sut.lease_ms = ParseFlagDouble(v, "--lease_ms");
    } else if (FlagEq(argv[i], "--heartbeat_ms", &v)) {
      config.sut.heartbeat_ms = ParseFlagDouble(v, "--heartbeat_ms");
    } else if (FlagEq(argv[i], "--fence_epoch", &v)) {
      config.sut.fence_epoch = ParseFlagUint64(v, "--fence_epoch");
    } else if (FlagEq(argv[i], "--net_partition", &v)) {
      const char* colon = strchr(v, ':');
      if (colon == nullptr) {
        fprintf(stderr, "--net_partition must be START:DUR seconds, got %s\n",
                v);
        return 2;
      }
      config.sut.net_partition_start_s =
          ParseFlagDouble(std::string(v, colon - v).c_str(),
                          "--net_partition start");
      config.sut.net_partition_dur_s =
          ParseFlagDouble(colon + 1, "--net_partition duration");
    } else if (FlagEq(argv[i], "--resync_mode", &v)) {
      if (strcmp(v, "delta") == 0) {
        config.sut.resync_mode = 1;
      } else if (strcmp(v, "wal") == 0) {
        config.sut.resync_mode = 0;
      } else {
        fprintf(stderr, "--resync_mode must be delta or wal, got %s\n", v);
        return 2;
      }
    } else if (FlagEq(argv[i], "--workload_mix", &v)) {
      config.workload.mix_spec = v;
      config.workload.type = WorkloadConfig::Type::kMixed;
      std::string err;
      if (!ParseWorkloadMix(v, &config.workload.profiles, &err)) {
        fprintf(stderr, "--workload_mix: %s\n", err.c_str());
        return 2;
      }
    } else if (FlagEq(argv[i], "--arrival", &v)) {
      if (strcmp(v, "closed") == 0) {
        config.workload.arrival = Arrival::kClosed;
      } else if (strcmp(v, "poisson") == 0) {
        config.workload.arrival = Arrival::kPoisson;
      } else if (strcmp(v, "diurnal") == 0) {
        config.workload.arrival = Arrival::kDiurnal;
      } else if (strcmp(v, "spike") == 0) {
        config.workload.arrival = Arrival::kSpike;
      } else {
        fprintf(stderr,
                "--arrival must be closed, poisson, diurnal or spike, "
                "got %s\n", v);
        return 2;
      }
    } else if (FlagEq(argv[i], "--arrival_rate", &v)) {
      config.workload.arrival_rate =
          ParseFlagDouble(v, "--arrival_rate", /*min_value=*/1);
    } else if (FlagEq(argv[i], "--zipf_theta", &v)) {
      double theta = ParseFlagDouble(v, "--zipf_theta");
      if (theta <= 0 || theta >= 1) {
        fprintf(stderr, "--zipf_theta must be in (0, 1), got %s\n", v);
        return 2;
      }
      config.workload.default_profile.dist = KeyDist::kZipfian;
      config.workload.default_profile.zipf_theta = theta;
      saw_zipf = true;
    } else if (FlagEq(argv[i], "--hotspot", &v)) {
      const char* colon = strchr(v, ':');
      if (colon == nullptr) {
        fprintf(stderr, "--hotspot must be FRAC:OPFRAC, got %s\n", v);
        return 2;
      }
      double frac = ParseFlagDouble(std::string(v, colon - v).c_str(),
                                    "--hotspot fraction");
      double opfrac = ParseFlagDouble(colon + 1, "--hotspot op fraction");
      if (frac <= 0 || frac > 1 || opfrac <= 0 || opfrac > 1) {
        fprintf(stderr, "--hotspot fractions must be in (0, 1], got %s\n", v);
        return 2;
      }
      config.workload.default_profile.dist = KeyDist::kHotspot;
      config.workload.default_profile.hotspot_frac = frac;
      config.workload.default_profile.hotspot_opfrac = opfrac;
      saw_hotspot = true;
    } else if (FlagEq(argv[i], "--ttl_frac", &v)) {
      config.workload.ttl_frac = ParseFlagDouble(v, "--ttl_frac");
      if (config.workload.ttl_frac > 1.0) {
        fprintf(stderr, "--ttl_frac must be in [0, 1]\n");
        return 2;
      }
    } else if (FlagEq(argv[i], "--ttl_s", &v)) {
      config.workload.ttl_s = ParseFlagDouble(v, "--ttl_s");
    } else if (FlagEq(argv[i], "--deadline_us", &v)) {
      config.workload.deadline_us = ParseFlagDouble(v, "--deadline_us");
    } else if (strcmp(argv[i], "--list_fault_sites") == 0) {
      for (const auto& site : sim::KnownFaultSites()) {
        printf("%-28s %s\n", site.site, site.what);
      }
      return 0;
    } else if (strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }

  if (config.sut.shards > 1 && config.sut.kind != SystemKind::kKvaccel) {
    fprintf(stderr, "--shards>1 requires --system=kvaccel\n");
    return 2;
  }
  if (config.sut.ha) {
    if (config.sut.kind != SystemKind::kKvaccel) {
      fprintf(stderr, "--ha requires --system=kvaccel\n");
      return 2;
    }
    if (config.sut.shards > 1) {
      fprintf(stderr, "--ha requires --shards=1\n");
      return 2;
    }
  }
  if (config.sut.ndp_mode != ndp::OffloadMode::kOff &&
      config.sut.kind != SystemKind::kKvaccel) {
    fprintf(stderr, "--ndp requires --system=kvaccel\n");
    return 2;
  }
  if (saw_zipf && saw_hotspot) {
    fprintf(stderr, "--zipf_theta and --hotspot are mutually exclusive\n");
    return 2;
  }
  if (config.workload.arrival != Arrival::kClosed &&
      config.workload.type != WorkloadConfig::Type::kMixed) {
    fprintf(stderr, "--arrival=%s requires --workload=mixed\n",
            config.workload.arrival == Arrival::kPoisson   ? "poisson"
            : config.workload.arrival == Arrival::kDiurnal ? "diurnal"
                                                           : "spike");
    return 2;
  }
  if (config.workload.ttl_frac > 0 &&
      config.workload.type != WorkloadConfig::Type::kMixed) {
    fprintf(stderr, "--ttl_frac requires --workload=mixed\n");
    return 2;
  }

  RunResult r = RunBenchmark(config);

  printf("system            : %s\n", r.name.c_str());
  printf("window            : %.1f virtual seconds (scale %.3g)\n",
         r.seconds, config.scale);
  printf("write throughput  : %.1f Kops/s (%.1f MB/s)\n", r.write_kops,
         r.write_mbps);
  if (r.read_kops > 0) {
    printf("read throughput   : %.1f Kops/s\n", r.read_kops);
  }
  if (r.scan_kops > 0) {
    printf("scan throughput   : %.1f Kops/s (seek+next)\n", r.scan_kops);
  }
  printf("put latency       : avg %.1f us, P99 %.1f us, P99.9 %.1f us\n",
         r.put_avg_us, r.put_p99_us, r.put_p999_us);
  printf("host CPU          : %.1f%%   efficiency (MB/s / CPU%%): %.2f\n",
         r.cpu_pct, r.efficiency);
  printf("stalls            : %llu events, %.1f s total; slowdown periods: "
         "%llu (%llu delayed writes)\n",
         static_cast<unsigned long long>(r.stall_events), r.stalled_seconds,
         static_cast<unsigned long long>(r.slowdown_periods),
         static_cast<unsigned long long>(r.slowdown_events));
  printf("group commit      : %llu groups, mean %.2f entries/group "
         "(max %llu)\n",
         static_cast<unsigned long long>(r.write_groups),
         r.group_commit_mean,
         static_cast<unsigned long long>(r.group_commit_max));
  printf("block cache       : %llu hits / %llu misses (%.1f%% hit rate)\n",
         static_cast<unsigned long long>(r.cache_hits),
         static_cast<unsigned long long>(r.cache_misses),
         r.cache_hit_rate * 100.0);
  printf("compactions       : %llu jobs (%llu split into %llu subcompactions, "
         "%llu intra-L0), %.1f s throttled\n",
         static_cast<unsigned long long>(r.compactions),
         static_cast<unsigned long long>(r.split_compactions),
         static_cast<unsigned long long>(r.subcompactions),
         static_cast<unsigned long long>(r.intra_l0_compactions),
         r.compaction_throttle_seconds);
  if (config.sut.kind == SystemKind::kKvaccel) {
    printf("kvaccel           : %llu redirected writes (%llu batches), "
           "%llu rollbacks, %llu detector checks\n",
           static_cast<unsigned long long>(r.redirected_writes),
           static_cast<unsigned long long>(r.redirected_batches),
           static_cast<unsigned long long>(r.rollbacks),
           static_cast<unsigned long long>(r.detector_checks));
  }
  if (r.ndp_mode >= 0) {
    printf("ndp offload       : %s mode, %llu device compactions "
           "(%.1f MB written), %llu fallbacks, planner %llu device / "
           "%llu host jobs\n",
           r.ndp_mode == 1 ? "force" : "auto",
           static_cast<unsigned long long>(r.ndp_compactions),
           r.ndp_mb_written,
           static_cast<unsigned long long>(r.ndp_fallbacks),
           static_cast<unsigned long long>(r.ndp_planner_device_jobs),
           static_cast<unsigned long long>(r.ndp_planner_host_jobs));
  }
  if (r.ha_repl_ack >= 0) {
    printf("ha replication    : %s acks, %llu wal records + %llu intent "
           "records (%.1f MB shipped), %llu net retries, %llu lost entries\n",
           r.ha_repl_ack == 1 ? "async" : "sync",
           static_cast<unsigned long long>(r.ha_wal_records),
           static_cast<unsigned long long>(r.ha_intent_records), r.ha_repl_mb,
           static_cast<unsigned long long>(r.ha_net_retries),
           static_cast<unsigned long long>(r.ha_lost_entries));
    printf("ha failover       : promoted backup in %.2f ms, %llu mirror "
           "entries drained, %d checker errors (%d warnings)\n",
           r.ha_failover_ms,
           static_cast<unsigned long long>(r.ha_failover_drained),
           r.ha_failover_checker_errors, r.ha_failover_checker_warnings);
    if (r.ha_net_partition != 0) {
      printf("ha partition      : %llu fenced write rejects, %llu lease "
             "expirations, %llu heartbeats, promoted at epoch %llu\n",
             static_cast<unsigned long long>(r.ha_fenced_rejects),
             static_cast<unsigned long long>(r.ha_lease_expirations),
             static_cast<unsigned long long>(r.ha_heartbeats),
             static_cast<unsigned long long>(r.ha_fence_epoch));
    }
    if (r.ha_resync_mode >= 0) {
      printf("ha rejoin         : %s resync in %.2f ms, %llu entries "
             "(%llu quarantined), %llu write-path bytes vs %llu wal-replay "
             "bytes, %llu scrubs deferred, %d checker errors\n",
             r.ha_resync_mode == 1 ? "delta" : "wal", r.ha_rejoin_ms,
             static_cast<unsigned long long>(r.ha_resync_entries),
             static_cast<unsigned long long>(r.ha_quarantined_keys),
             static_cast<unsigned long long>(r.ha_write_path_bytes),
             static_cast<unsigned long long>(r.ha_wal_replay_bytes),
             static_cast<unsigned long long>(r.ha_scrub_deferred),
             r.ha_rejoin_checker_errors);
    }
  }
  if (!r.shards.empty()) {
    for (const ShardSummary& s : r.shards) {
      printf("shard %-3d         : %.1f Kops/s, p50 %.1f us, p99 %.1f us, "
             "%llu redirected (%llu rejected), %.1f s stalled, "
             "arbiter %llu/%llu grants throttled (%.2f s)\n",
             s.shard, s.write_kops, s.put_p50_us, s.put_p99_us,
             static_cast<unsigned long long>(s.redirected_writes),
             static_cast<unsigned long long>(s.redirect_admission_rejects),
             s.stalled_seconds,
             static_cast<unsigned long long>(s.arbiter_throttles),
             static_cast<unsigned long long>(s.arbiter_grants),
             s.arbiter_throttle_seconds);
    }
    printf("shard fairness    : max/min throughput ratio %.2f\n",
           r.shard_fairness_ratio);
  }
  if (r.mixed_run == 1) {
    printf("open loop         : %s arrivals, %llu scheduled, %llu completed, "
           "%llu abandoned, %llu deadline misses (%llu ttl deletes)\n",
           r.arrival_mode == 1   ? "poisson"
           : r.arrival_mode == 2 ? "diurnal"
           : r.arrival_mode == 3 ? "spike"
                                 : "closed",
           static_cast<unsigned long long>(r.scheduled_ops),
           static_cast<unsigned long long>(r.completed_ops),
           static_cast<unsigned long long>(r.abandoned_ops),
           static_cast<unsigned long long>(r.deadline_misses),
           static_cast<unsigned long long>(r.ttl_deletes));
    printf("service latency   : p50 %.1f us, p99 %.1f us, p99.9 %.1f us "
           "(from issue)\n",
           r.service_p50_us, r.service_p99_us, r.service_p999_us);
    printf("arrival latency   : p50 %.1f us, p99 %.1f us, p99.9 %.1f us "
           "(from scheduled arrival)\n",
           r.arrival_p50_us, r.arrival_p99_us, r.arrival_p999_us);
  }
  for (const TenantSummary& t : r.tenants) {
    printf("tenant %-2d         : %llu ops, p50 %.1f us, p99 %.1f us, "
           "p99.9 %.1f us",
           t.tenant, static_cast<unsigned long long>(t.ops), t.put_p50_us,
           t.put_p99_us, t.put_p999_us);
    if (t.scheduled_ops > 0) {
      printf("; arrival p99.9 %.1f us, %llu deadline misses, %llu abandoned",
             t.arrival_p999_us,
             static_cast<unsigned long long>(t.deadline_misses),
             static_cast<unsigned long long>(t.abandoned_ops));
    }
    printf("\n");
  }
  if (!config.fault_profile.empty()) {
    printf("faults            : profile %s (seed %llu): %llu injected, "
           "%llu retries, %llu background errors",
           config.fault_profile.c_str(),
           static_cast<unsigned long long>(config.fault_seed),
           static_cast<unsigned long long>(r.fault_injected),
           static_cast<unsigned long long>(r.io_retries),
           static_cast<unsigned long long>(r.background_errors));
    if (config.sut.kind == SystemKind::kKvaccel) {
      printf(", %llu dev retries, %llu fallback writes",
             static_cast<unsigned long long>(r.dev_retries),
             static_cast<unsigned long long>(r.fallback_writes));
    }
    printf("\n");
  }
  if (print_series) {
    PrintSeries("write Kops/s", r.per_sec_write_kops, "Kops/s");
    if (r.read_kops > 0) {
      PrintSeries("read Kops/s", r.per_sec_read_kops, "Kops/s");
    }
    PrintSeries("PCIe MB/s", r.per_sec_pcie_mbps, "MB/s");
    PrintStallRegions(r);
  }
  if (!config.trace_out.empty()) {
    printf("trace             : %s (load in Perfetto / chrome://tracing)\n",
           config.trace_out.c_str());
  }
  if (!json_out.empty()) {
    if (!WriteJsonReport(json_out, config, {r})) return 1;
    printf("json report       : %s\n", json_out.c_str());
  }
  return 0;
}
