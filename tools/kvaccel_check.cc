// kvaccel_check: offline consistency checker / repair for a dumped DB image.
//
//   build/tools/kvaccel_dbbench --system=kvaccel ... --db_dump_dir=/tmp/img
//   build/tools/kvaccel_check --db_dir=/tmp/img
//   build/tools/kvaccel_check --db_dir=/tmp/img --repair --out_dir=/tmp/fixed
//
// Loads the host-directory image (written by SimFs::DumpToHostDir) into a
// fresh simulated file system, replays the MANIFEST without mutating it and
// runs the full invariant catalogue from DESIGN.md §9: manifest/SST
// cross-checks, per-block CRCs, key ordering, L1+ non-overlap, sequence
// monotonicity, and WAL tail sanity.
//
// Flags:
//   --db_dir=DIR   image to check (required)
//   --repair       on inconsistency, quarantine corrupt files (*.bad),
//                  salvage the WAL prefix and rebuild the MANIFEST from the
//                  surviving SSTs, then re-check
//   --out_dir=DIR  where --repair writes the repaired image (default: the
//                  input --db_dir, in place)
//
// Exit status: 0 = consistent (or repaired to consistency), 1 = errors
// found (and, with --repair, not fully repaired), 2 = usage or I/O trouble.
#include <cstdio>
#include <cstring>
#include <string>

#include "check/db_checker.h"
#include "fs/simfs.h"
#include "sim/cpu_pool.h"
#include "sim/sim_env.h"
#include "ssd/hybrid_ssd.h"

using namespace kvaccel;

namespace {

void Usage() {
  fprintf(stderr,
          "usage: kvaccel_check --db_dir=DIR [--repair] [--out_dir=DIR]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_dir;
  std::string out_dir;
  bool repair = false;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (strncmp(arg, "--db_dir=", 9) == 0) {
      db_dir = arg + 9;
    } else if (strncmp(arg, "--out_dir=", 10) == 0) {
      out_dir = arg + 10;
    } else if (strcmp(arg, "--repair") == 0) {
      repair = true;
    } else if (strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
      return 2;
    }
  }
  if (db_dir.empty()) {
    Usage();
    return 2;
  }
  if (out_dir.empty()) out_dir = db_dir;

  // A minimal world: loaded images carry no extents, so reads come from the
  // page cache and device geometry barely matters — it just has to exist.
  sim::SimEnv env;
  ssd::SsdConfig ssd_config;
  ssd_config.capacity_bytes = 8ull << 30;
  ssd::HybridSsd ssd(&env, ssd_config);
  fs::SimFs fs(&ssd, 0);
  sim::CpuPool host_cpu(&env, "host", 8);

  Status load = fs.LoadFromHostDir(db_dir);
  if (!load.ok()) {
    fprintf(stderr, "load %s: %s\n", db_dir.c_str(),
            load.ToString().c_str());
    return 2;
  }

  lsm::DbOptions opts;  // format knobs only; the checker forces CRC checks
  lsm::DbEnv denv{&env, &ssd, &fs, &host_cpu};

  int rc = 2;  // overwritten unless the simulated thread never ran
  env.Spawn("kvaccel-check", [&] {
    check::DbChecker checker(opts, denv);
    check::CheckReport report = checker.Check();
    printf("%s", report.ToString().c_str());
    if (report.ok()) {
      rc = 0;
      return;
    }
    if (!repair) {
      rc = 1;
      return;
    }

    check::CheckReport repair_report;
    Status rs = checker.Repair(&repair_report);
    printf("%s", repair_report.ToString().c_str());
    if (!rs.ok()) {
      fprintf(stderr, "repair: %s\n", rs.ToString().c_str());
      rc = 1;
      return;
    }
    check::CheckReport after = checker.Check();
    printf("after repair: %s", after.ToString().c_str());
    rc = after.ok() ? 0 : 1;
  });
  env.Run();

  if (repair && rc == 0) {
    Status dump = fs.DumpToHostDir(out_dir);
    if (!dump.ok()) {
      fprintf(stderr, "write repaired image to %s: %s\n", out_dir.c_str(),
              dump.ToString().c_str());
      return 2;
    }
    printf("repaired image written to %s\n", out_dir.c_str());
  }
  return rc;
}
