#!/usr/bin/env python3
"""Merge per-system kvaccel-run-v1 reports into BENCH_smoke.json.

Usage: merge_smoke.py OUT.json [LABEL=]REPORT.json...

Each input is one dbbench --json_out report (one run). The output maps each
system name to the smoke signals CI tracks across commits: write throughput,
total stalled seconds, P99 put latency and the compaction-shape counters.

By default a run is keyed by its report name (e.g. "RocksDB(4)"). Two runs
of the same system/thread count collide on that name, so an input may be
prefixed with an explicit label — "rocksdb4-nosub=path.json" — which becomes
the key instead.
"""
import json
import sys


def main():
    if len(sys.argv) < 3:
        print("usage: merge_smoke.py OUT.json [LABEL=]REPORT.json...",
              file=sys.stderr)
        return 2
    out_path = sys.argv[1]

    merged = {"schema": "kvaccel-bench-smoke-v1", "systems": {}}
    for arg in sys.argv[2:]:
        label, sep, path = arg.partition("=")
        if not sep:
            label, path = None, arg
        with open(path, "rb") as f:
            report = json.load(f)
        if report.get("schema") != "kvaccel-run-v1":
            print(f"{path}: not a kvaccel-run-v1 report", file=sys.stderr)
            return 1
        for run in report.get("runs", []):
            s = run["summary"]
            entry = {
                "write_kops": s["write_kops"],
                "write_mbps": s["write_mbps"],
                "stalled_seconds": s["stalled_seconds"],
                "stall_events": s["stall_events"],
                "put_p99_us": s["put_p99_us"],
                "cpu_pct": s["cpu_pct"],
                "efficiency": s["efficiency"],
                "compactions": s["compactions"],
                "split_compactions": s["split_compactions"],
                "subcompactions": s["subcompactions"],
                "intra_l0_compactions": s["intra_l0_compactions"],
                "compaction_throttle_seconds": s["compaction_throttle_seconds"],
            }
            # Sharded runs carry per-shard rollups (.get: absent on reports
            # from before the sharded engine, and on shards=1 runs).
            if run.get("shards"):
                entry["shard_fairness_ratio"] = s.get("shard_fairness_ratio")
                entry["shards"] = [
                    {
                        "shard": sh["shard"],
                        "write_kops": sh["write_kops"],
                        "put_p99_us": sh["put_p99_us"],
                        "redirected_writes": sh["redirected_writes"],
                        "arbiter_throttles": sh.get("arbiter_throttles", 0),
                        "arbiter_throttle_seconds":
                            sh.get("arbiter_throttle_seconds", 0.0),
                    }
                    for sh in run["shards"]
                ]
            # HA-pair runs carry the replication stream + failover signals
            # (absent on single-node reports).
            if run.get("ha"):
                ha = run["ha"]
                entry["ha"] = {
                    "repl_ack": ha["repl_ack"],
                    "wal_records": ha["wal_records"],
                    "repl_mb": ha["repl_mb"],
                    "net_retries": ha["net_retries"],
                    "lost_entries": ha["lost_entries"],
                    "sync_ship_ms": ha["sync_ship_ms"],
                    "failover": ha["failover"],
                }
                # Partition drills additionally carry the fencing counters
                # and the post-heal reconciliation measurement (.get: absent
                # on reports from before partition tolerance).
                if ha.get("net_partition"):
                    entry["ha"]["net_partition"] = ha["net_partition"]
                    entry["ha"]["fenced_write_rejects"] = (
                        ha["fenced_write_rejects"])
                    entry["ha"]["lease_expirations"] = ha["lease_expirations"]
                if ha.get("rejoin"):
                    entry["ha"]["rejoin"] = ha["rejoin"]
            # Open-loop mixed-matrix runs carry the arrival accounting:
            # latency measured from scheduled arrival time (not issue time),
            # deadline misses and the per-tenant rollups (absent on
            # closed-loop and classic-workload reports).
            if run.get("open_loop"):
                ol = run["open_loop"]
                entry["open_loop"] = {
                    "arrival": ol["arrival"],
                    "scheduled_ops": ol["scheduled_ops"],
                    "completed_ops": ol["completed_ops"],
                    "abandoned_ops": ol["abandoned_ops"],
                    "deadline_misses": ol["deadline_misses"],
                    "ttl_deletes": ol["ttl_deletes"],
                    "service_p99_us": ol["service_p99_us"],
                    "service_p999_us": ol["service_p999_us"],
                    "arrival_p99_us": ol["arrival_p99_us"],
                    "arrival_p999_us": ol["arrival_p999_us"],
                }
                if run.get("tenants"):
                    entry["open_loop"]["tenants"] = [
                        {
                            "tenant": t["tenant"],
                            "ops": t["ops"],
                            "scheduled_ops": t["scheduled_ops"],
                            "deadline_misses": t["deadline_misses"],
                            "arrival_p50_us": t["arrival_p50_us"],
                            "arrival_p99_us": t["arrival_p99_us"],
                            "arrival_p999_us": t["arrival_p999_us"],
                        }
                        for t in run["tenants"]
                    ]
            # NDP runs carry the offloaded-compaction + planner signals
            # (absent when no NDP engine was attached).
            if run.get("ndp"):
                ndp = run["ndp"]
                entry["ndp"] = {
                    "mode": ndp["mode"],
                    "compactions": ndp["compactions"],
                    "mb_written": ndp["mb_written"],
                    "fallbacks": ndp["fallbacks"],
                    "planner_device_jobs": ndp["planner_device_jobs"],
                    "planner_host_jobs": ndp["planner_host_jobs"],
                    "cpu_busy_seconds": ndp["cpu_busy_seconds"],
                }
            merged["systems"][label or run["name"]] = entry
        merged.setdefault("config", report.get("config"))

    if not merged["systems"]:
        print("no runs found in inputs", file=sys.stderr)
        return 1
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"{out_path}: {len(merged['systems'])} systems")
    return 0


if __name__ == "__main__":
    sys.exit(main())
