#!/usr/bin/env bash
# Tier-1 verification, twice: a plain build and an ASan+UBSan build
# (-DKVACCEL_SANITIZE=ON). Both must pass for a change to land.
#
#   tools/ci.sh            # run both passes
#   tools/ci.sh plain      # plain pass only
#   tools/ci.sh sanitize   # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2"; shift 2
  echo "==== ${name}: configure + build (${dir}) ===="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  # Fault-injection suite, explicitly: all seeds are fixed in the tests, so
  # this is deterministic in both the plain and sanitized builds.
  echo "==== ${name}: ctest -L faults ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L faults
  # Faulty-run smoke: the bench must complete under an armed fault profile.
  echo "==== ${name}: dbbench fault smoke ===="
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=5 --fault_profile=flaky-nvme --fault_seed=7 > /dev/null
}

mode="${1:-all}"
case "${mode}" in
  plain)    run_pass "plain" build ;;
  sanitize) run_pass "sanitize" build-asan -DKVACCEL_SANITIZE=ON ;;
  all)
    run_pass "plain" build
    run_pass "sanitize" build-asan -DKVACCEL_SANITIZE=ON
    ;;
  *)
    echo "usage: tools/ci.sh [plain|sanitize|all]" >&2
    exit 2
    ;;
esac
echo "CI OK (${mode})"
