#!/usr/bin/env bash
# Tier-1 verification, twice: a plain build and an ASan+UBSan build
# (-DKVACCEL_SANITIZE=ON). Both must pass for a change to land.
#
#   tools/ci.sh            # run both passes
#   tools/ci.sh plain      # plain pass only
#   tools/ci.sh sanitize   # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2"; shift 2
  echo "==== ${name}: configure + build (${dir}) ===="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  # Fault-injection suite, explicitly: all seeds are fixed in the tests, so
  # this is deterministic in both the plain and sanitized builds.
  echo "==== ${name}: ctest -L faults ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L faults
  # Compaction suite, explicitly: subcompaction output equivalence,
  # crash.subcompaction.mid recovery, report determinism with splits on,
  # worker park/resume accounting and the priority-scheduler unit tests.
  echo "==== ${name}: ctest -L compaction ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L compaction
  # Faulty-run smoke: the bench must complete under an armed fault profile.
  echo "==== ${name}: dbbench fault smoke ===="
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=5 --fault_profile=flaky-nvme --fault_seed=7 > /dev/null
  # Observability suite, explicitly (tracer, metrics registry, run reports).
  echo "==== ${name}: ctest -L obs ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L obs
  # Integrity suite, explicitly (model-oracle nemesis, consistency checker,
  # online scrubber) — deterministic in both builds, all seeds pinned.
  echo "==== ${name}: ctest -L check ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L check
  # Shard suite, explicitly: routing invariants (boundary keys in exactly one
  # shard), cross-shard iterator order, per-shard crash recovery, arbiter
  # fairness, sharded report determinism and the sharded nemesis smoke.
  echo "==== ${name}: ctest -L shard ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L shard
  # HA suite, explicitly: NetLink wire/latency accounting (incl. partition
  # and delay fault sites), replicated-sequence application, sync failover
  # serving every acked write, async backlog drain with the byte-bounded
  # queue, lease fencing / split-brain prevention / stale-epoch depose,
  # delta-vs-WAL-replay rejoin convergence, backup-side circuit-breaker
  # recovery, and the two-node crash + partition nemesis tests.
  echo "==== ${name}: ctest -L ha ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L ha
  # NDP suite, explicitly: COMPACT command lifecycle, planner host-vs-device
  # choice under CPU pressure (with hysteresis and the stall veto), device
  # failure cooldown, off-vs-force data equivalence and same-seed --ndp=auto
  # report byte-identity.
  echo "==== ${name}: ctest -L ndp ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L ndp
  # Workload-matrix suite, explicitly: Zipfian boundary/shape/zeta-cache
  # regressions, hotspot shape, mix-spec parsing, open-loop arrival curves
  # (spike deadline misses, diurnal trough, TTL churn) and same-seed report
  # byte-identity for the mixed multi-tenant engine.
  echo "==== ${name}: ctest -L workload ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L workload
  # Nemesis smoke: 30 crash-recovery cycles on a pinned seed, every recovery
  # verified against the model oracle. A failure prints the seed and dumps a
  # trace replayable with --replay.
  echo "==== ${name}: nemesis smoke (30 cycles) ===="
  "${dir}/tools/kvaccel_nemesis" --cycles=30 --nemesis_seed=1317456661 \
    --trace_dump_dir="${dir}/obs-artifacts" > /dev/null 2>&1
  # NDP nemesis smoke: every compaction forced through the device COMPACT
  # path, the first cycles armed at each crash.ndp.* kill point in turn, and
  # transient COMPACT rejections mixed in; every recovery must still match
  # the model oracle.
  echo "==== ${name}: NDP nemesis smoke (12 cycles) ===="
  "${dir}/tools/kvaccel_nemesis" --ndp --cycles=12 --nemesis_seed=7 \
    --trace_dump_dir="${dir}/obs-artifacts" > /dev/null 2>&1
  # Two-node HA nemesis smokes on pinned seeds, both ack modes: each cycle
  # kills the primary at one registered crash site (12 cycles round-robins
  # through all 10, incl. crash.net.send.mid), promotes the backup and holds
  # it to the model oracle — sync must serve every acked write, async loss
  # must stay under the queue-cap bound.
  echo "==== ${name}: HA nemesis smokes (sync + async) ===="
  "${dir}/tools/kvaccel_nemesis" --ha --cycles=12 --nemesis_seed=42 \
    --trace_dump_dir="${dir}/obs-artifacts" > /dev/null 2>&1
  "${dir}/tools/kvaccel_nemesis" --ha --repl_ack=async --cycles=6 \
    --nemesis_seed=99 \
    --trace_dump_dir="${dir}/obs-artifacts" > /dev/null 2>&1
  # Partition nemesis smokes on pinned seeds: cycles rotate network-fault
  # kinds (symmetric cut and ack-loss cut with verified failover + rejoin,
  # transient blip, flapping link). The harness holds both nodes to the
  # model oracle and asserts no sync-acked write is lost, no write is acked
  # by a fenced primary, and reconciliation converges byte-identically —
  # in delta mode with zero write-path bytes, in wal mode through the full
  # write path.
  echo "==== ${name}: HA partition nemesis smokes (delta + wal resync) ===="
  "${dir}/tools/kvaccel_nemesis" --ha --net_partition --cycles=8 \
    --nemesis_seed=24301 \
    --trace_dump_dir="${dir}/obs-artifacts" > /dev/null 2>&1
  "${dir}/tools/kvaccel_nemesis" --ha --net_partition --resync_mode=wal \
    --cycles=4 --nemesis_seed=777 \
    --trace_dump_dir="${dir}/obs-artifacts" > /dev/null 2>&1
  # Run-artifact smoke: a traced KVACCEL run must produce a parseable Chrome
  # trace containing flush, compaction and stall events, plus a parseable
  # kvaccel-run-v1 JSON report. The report is validated with json.tool; the
  # trace (tens of MB) goes through check_trace.py, whose json.load is a
  # strict parse without json.tool's minutes-long pretty-printing.
  echo "==== ${name}: dbbench trace/report artifacts ===="
  local obs_dir="${dir}/obs-artifacts"
  mkdir -p "${obs_dir}"
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=10 --scale=0.0625 \
    --trace_out="${obs_dir}/kvaccel_trace.json" \
    --json_out="${obs_dir}/kvaccel_report.json" \
    --db_dump_dir="${obs_dir}/kvaccel_db_image" > /dev/null
  python3 -m json.tool "${obs_dir}/kvaccel_report.json" > /dev/null
  python3 tools/check_trace.py "${obs_dir}/kvaccel_trace.json"
  # The dumped end-of-run image must pass the offline consistency checker:
  # manifest/SST cross-checks, block CRCs, L1+ non-overlap, WAL tail sanity.
  echo "==== ${name}: kvaccel_check over dumped DB image ===="
  "${dir}/tools/kvaccel_check" --db_dir="${obs_dir}/kvaccel_db_image"
}

# Short fillrandom on each system; the merged BENCH_smoke.json records the
# throughput / stall / P99 signals CI tracks across commits.
bench_smoke() {
  local dir="$1" out_dir="$1/obs-artifacts"
  echo "==== bench smoke: fillrandom x {rocksdb, adoc, kvaccel} ===="
  mkdir -p "${out_dir}"
  local sys
  for sys in rocksdb adoc kvaccel; do
    "${dir}/tools/kvaccel_dbbench" --system="${sys}" --workload=fillrandom \
      --seconds=10 --scale=0.0625 \
      --json_out="${out_dir}/smoke_${sys}.json" > /dev/null
  done
  # Subcompaction A/B at 4 compaction threads: same seed and workload, split
  # width 4 vs 1. The deterministic simulation makes this a hard gate, not a
  # statistical one: with splitting on, total write-stall virtual time must
  # be strictly lower (ISSUE acceptance for the range-partitioned path).
  echo "==== bench smoke: subcompaction A/B (threads=4) ===="
  local sub
  for sub in 1 4; do
    "${dir}/tools/kvaccel_dbbench" --system=rocksdb --workload=fillrandom \
      --seconds=20 --scale=0.0625 --threads=4 --writer_threads=4 \
      --batch_size=8 --max_subcompactions="${sub}" \
      --json_out="${out_dir}/smoke_sub${sub}.json" > /dev/null
  done
  python3 - "${out_dir}/smoke_sub1.json" "${out_dir}/smoke_sub4.json" <<'EOF'
import json, sys
off = json.load(open(sys.argv[1]))["runs"][0]["summary"]
on = json.load(open(sys.argv[2]))["runs"][0]["summary"]
assert on["split_compactions"] > 0, "subcompaction run never split a job"
assert on["stalled_seconds"] < off["stalled_seconds"], (
    f"subcompactions on stalled {on['stalled_seconds']}s, "
    f"off {off['stalled_seconds']}s — no strict win")
print(f"subcompaction A/B: stalled {off['stalled_seconds']:.2f}s -> "
      f"{on['stalled_seconds']:.2f}s with {on['split_compactions']} split jobs")
EOF
  # KVACCEL-vs-seed guard: the fresh kvaccel run's stall-time fraction must
  # not regress past the committed BENCH_smoke.json (tolerant: skipped when
  # no baseline entry exists, e.g. on a schema change).
  python3 - "${out_dir}/smoke_kvaccel.json" BENCH_smoke.json <<'EOF'
import json, sys, os
fresh = json.load(open(sys.argv[1]))
run = fresh["runs"][0]
frac = run["summary"]["stalled_seconds"] / max(run["seconds"], 1e-9)
if not os.path.exists(sys.argv[2]):
    print("no committed BENCH_smoke.json; skipping stall-fraction guard")
    sys.exit(0)
base = json.load(open(sys.argv[2]))
entry = base.get("systems", {}).get(run["name"])
if entry is None or "stalled_seconds" not in entry:
    print(f"no baseline for {run['name']}; skipping stall-fraction guard")
    sys.exit(0)
base_frac = entry["stalled_seconds"] / base.get("config", {}).get("seconds", 10)
slack = 0.02  # absolute stall-fraction slack for timing drift
assert frac <= base_frac + slack, (
    f"kvaccel stall fraction regressed: {frac:.4f} vs baseline "
    f"{base_frac:.4f} (+{slack} slack)")
print(f"kvaccel stall fraction {frac:.4f} vs baseline {base_frac:.4f}: ok")
EOF
  # Sharded-engine A/B: same seed and workload, shards=1 vs shards=4. Three
  # hard gates on the deterministic simulation: aggregate fillrandom
  # throughput with 4 shards must be >= the single-shard run, the max/min
  # per-shard throughput ratio must stay within 2x on the uniform workload,
  # and a same-seed rerun of the sharded bench must be byte-identical.
  echo "==== bench smoke: sharded A/B (shards=1 vs shards=4) ===="
  local sh
  for sh in 1 4; do
    "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
      --seconds=10 --scale=0.0625 --writer_threads=4 --batch_size=4 \
      --shards="${sh}" \
      --json_out="${out_dir}/smoke_shards${sh}.json" > /dev/null
  done
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=10 --scale=0.0625 --writer_threads=4 --batch_size=4 \
    --shards=4 --json_out="${out_dir}/smoke_shards4_rerun.json" > /dev/null
  cmp "${out_dir}/smoke_shards4.json" "${out_dir}/smoke_shards4_rerun.json" \
    || { echo "sharded bench is nondeterministic across same-seed runs"; exit 1; }
  python3 - "${out_dir}/smoke_shards1.json" "${out_dir}/smoke_shards4.json" <<'EOF'
import json, sys
one = json.load(open(sys.argv[1]))["runs"][0]
four = json.load(open(sys.argv[2]))["runs"][0]
k1, k4 = one["summary"]["write_kops"], four["summary"]["write_kops"]
assert k4 >= k1, f"shards=4 aggregate {k4} kops < shards=1 {k1} kops"
ratio = four["summary"]["shard_fairness_ratio"]
assert 1.0 <= ratio <= 2.0, f"per-shard fairness ratio {ratio} outside [1, 2]"
shards = four["shards"]
assert len(shards) == 4 and all(s["writes"] > 0 for s in shards)
print(f"sharded A/B: {k1:.1f} -> {k4:.1f} kops, fairness ratio {ratio:.2f}")
EOF
  # HA sync A/B: same seed/scale/duration as the single-node kvaccel smoke,
  # with a warm backup acked synchronously. Hard failover gates (promoted
  # backup passes the checker, sync acks never lose); the throughput cost of
  # sync replication is reported and tracked via BENCH_smoke.json.
  echo "==== bench smoke: HA sync pair vs single node ===="
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=10 --scale=0.0625 --ha --repl_ack=sync \
    --json_out="${out_dir}/smoke_ha_sync.json" > /dev/null
  python3 - "${out_dir}/smoke_ha_sync.json" "${out_dir}/smoke_kvaccel.json" <<'EOF'
import json, sys
ha_run = json.load(open(sys.argv[1]))["runs"][0]
single = json.load(open(sys.argv[2]))["runs"][0]
ha = ha_run["ha"]
assert ha["repl_ack"] == "sync", "smoke must run with sync acks"
assert ha["wal_records"] > 0, "HA run shipped no WAL batches"
assert ha["lost_entries"] == 0, "sync acks lost acked entries"
fo = ha["failover"]
assert fo["checker_errors"] == 0, "promoted backup failed the checker"
assert fo["promote_ms"] > 0, "failover reported no promotion work"
k_ha = ha_run["summary"]["write_kops"]
k_one = single["summary"]["write_kops"]
print(f"HA sync A/B: {k_one:.1f} -> {k_ha:.1f} kops "
      f"({k_ha / max(k_one, 1e-9):.3f}x, sync-replication cost), "
      f"{ha['wal_records']} wal records / {ha['repl_mb']:.2f} MB shipped; "
      f"failover {fo['promote_ms']:.1f} ms, "
      f"{fo['drained_entries']} mirror entries drained")
EOF
  # HA partition drill: the same HA pair with a 2 s symmetric partition
  # injected mid-window (partition -> lease lapse -> fenced primary ->
  # promote under a bumped epoch -> heal -> delta reconciliation). Hard
  # gates: the fenced primary rejected writes, nothing acked was lost, the
  # promoted node passes the checker at epoch >= 2, and the rejoin converges
  # with zero write-path bytes while full WAL replay would have moved more.
  echo "==== bench smoke: HA partition drill (partition -> heal -> reconcile) ===="
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=10 --scale=0.0625 --ha --repl_ack=sync \
    --net_partition=4:2 --resync_mode=delta \
    --json_out="${out_dir}/smoke_ha_partition.json" > /dev/null
  python3 - "${out_dir}/smoke_ha_partition.json" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))["runs"][0]
ha = run["ha"]
assert ha["net_partition"] == 1, "drill ran without a partition window"
assert ha["fenced_write_rejects"] > 0, "fenced primary never rejected a write"
assert ha["lease_expirations"] >= 1, "the primary's lease never lapsed"
assert ha["lost_entries"] == 0, "sync acks lost acked entries"
fo = ha["failover"]
assert fo["checker_errors"] == 0, "promoted backup failed the checker"
assert fo["fence_epoch"] >= 2, "promotion did not bump the fencing epoch"
rj = ha["rejoin"]
assert rj["resync_mode"] == "delta", "drill must measure the delta resync"
assert rj["checker_errors"] == 0, "rejoined node failed convergence"
assert rj["write_path_bytes"] == 0, "delta resync touched the write path"
if rj["resync_entries"] > 0:
    assert rj["wal_replay_bytes"] > rj["write_path_bytes"], (
        "delta resync not strictly cheaper than WAL replay")
print(f"HA partition drill: {ha['fenced_write_rejects']} fenced rejects, "
      f"epoch {fo['fence_epoch']}, delta resync {rj['resync_entries']} "
      f"entries in {rj['rejoin_ms']:.1f} ms "
      f"({rj['write_path_bytes']} write-path vs {rj['wal_replay_bytes']} "
      f"wal-replay bytes)")
EOF
  # NDP A/B: --ndp=off vs --ndp=auto on the same seed/scale, 20 s so several
  # compaction waves land inside the window. Deterministic hard gates: the
  # planner must actually offload, host CPU% must be strictly lower, and
  # efficiency and throughput must be no worse — offloading compaction can
  # only help the foreground. A same-seed auto rerun must be byte-identical.
  echo "==== bench smoke: NDP A/B (--ndp=off vs --ndp=auto) ===="
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=20 --scale=0.0625 --ndp=off \
    --json_out="${out_dir}/smoke_ndp_off.json" > /dev/null
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=20 --scale=0.0625 --ndp=auto \
    --json_out="${out_dir}/smoke_ndp_auto.json" > /dev/null
  "${dir}/tools/kvaccel_dbbench" --system=kvaccel --workload=fillrandom \
    --seconds=20 --scale=0.0625 --ndp=auto \
    --json_out="${out_dir}/smoke_ndp_auto_rerun.json" > /dev/null
  cmp "${out_dir}/smoke_ndp_auto.json" "${out_dir}/smoke_ndp_auto_rerun.json" \
    || { echo "--ndp=auto bench is nondeterministic across same-seed runs"; exit 1; }
  python3 - "${out_dir}/smoke_ndp_off.json" "${out_dir}/smoke_ndp_auto.json" <<'EOF'
import json, sys
off = json.load(open(sys.argv[1]))["runs"][0]
auto = json.load(open(sys.argv[2]))["runs"][0]
ndp = auto["ndp"]
assert ndp["mode"] == "auto", "smoke must run the auto planner"
assert ndp["compactions"] > 0, "--ndp=auto never completed a device compaction"
s_off, s_auto = off["summary"], auto["summary"]
assert s_auto["cpu_pct"] < s_off["cpu_pct"], (
    f"host CPU not strictly lower: auto {s_auto['cpu_pct']}% "
    f"vs off {s_off['cpu_pct']}%")
assert s_auto["efficiency"] >= s_off["efficiency"], (
    f"efficiency regressed: auto {s_auto['efficiency']} "
    f"vs off {s_off['efficiency']}")
assert s_auto["write_kops"] >= s_off["write_kops"], (
    f"throughput regressed: auto {s_auto['write_kops']} kops "
    f"vs off {s_off['write_kops']} kops")
print(f"NDP A/B: cpu {s_off['cpu_pct']:.2f}% -> {s_auto['cpu_pct']:.2f}%, "
      f"efficiency {s_off['efficiency']:.2f} -> {s_auto['efficiency']:.2f}, "
      f"{s_off['write_kops']:.1f} -> {s_auto['write_kops']:.1f} kops, "
      f"{ndp['compactions']} device compactions "
      f"({ndp['mb_written']:.1f} MB written device-side)")
EOF
  # Open-loop workload-matrix smoke: a pinned-seed skewed (Zipfian 0.99),
  # spiky, two-tenant mixed run measured from scheduled arrival time. Hard
  # gates: a same-seed rerun is byte-identical, the spike drives nonzero
  # deadline misses, every scheduled arrival is accounted (completed or
  # abandoned), and the arrival-time percentiles dominate the service-time
  # ones — the queueing delay coordinated omission used to hide.
  echo "==== bench smoke: open-loop workload matrix (zipfian + spike) ===="
  local openloop_flags=(--system=kvaccel --workload=mixed
    --workload_mix="put=70,get=20,del=5,scan=5" --zipf_theta=0.99
    --arrival=spike --arrival_rate=12000 --tenants=2 --writer_threads=2
    --ttl_frac=0.05 --seconds=10 --scale=0.0625)
  "${dir}/tools/kvaccel_dbbench" "${openloop_flags[@]}" \
    --json_out="${out_dir}/smoke_openloop.json" > /dev/null
  "${dir}/tools/kvaccel_dbbench" "${openloop_flags[@]}" \
    --json_out="${out_dir}/smoke_openloop_rerun.json" > /dev/null
  cmp "${out_dir}/smoke_openloop.json" "${out_dir}/smoke_openloop_rerun.json" \
    || { echo "open-loop bench is nondeterministic across same-seed runs"; exit 1; }
  python3 - "${out_dir}/smoke_openloop.json" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))["runs"][0]
ol = run["open_loop"]
assert ol["arrival"] == "spike", "smoke must run the spike arrival curve"
assert ol["scheduled_ops"] > 0, "open-loop run scheduled no arrivals"
assert ol["deadline_misses"] > 0, "spike overload produced no deadline misses"
assert ol["scheduled_ops"] == ol["completed_ops"] + ol["abandoned_ops"], (
    "scheduled arrivals not fully accounted as completed + abandoned")
assert ol["arrival_p99_us"] >= ol["service_p99_us"], (
    "arrival-time P99 below service-time P99 — queueing delay went missing")
tenants = run["tenants"]
assert len(tenants) == 2 and all(
    t["scheduled_ops"] > 0 and t["arrival_p999_us"] >= t["arrival_p50_us"]
    for t in tenants), "per-tenant arrival percentiles missing or inconsistent"
print(f"open-loop smoke: {ol['scheduled_ops']} arrivals, "
      f"{ol['completed_ops']} completed / {ol['abandoned_ops']} abandoned, "
      f"{ol['deadline_misses']} deadline misses, "
      f"service p99 {ol['service_p99_us']:.0f} us vs "
      f"arrival p99 {ol['arrival_p99_us']:.0f} us")
EOF
  python3 tools/merge_smoke.py BENCH_smoke.json \
    "${out_dir}/smoke_rocksdb.json" "${out_dir}/smoke_adoc.json" \
    "${out_dir}/smoke_kvaccel.json" \
    "rocksdb4-nosub=${out_dir}/smoke_sub1.json" \
    "rocksdb4-sub=${out_dir}/smoke_sub4.json" \
    "kvaccel-shards1=${out_dir}/smoke_shards1.json" \
    "kvaccel-shards4=${out_dir}/smoke_shards4.json" \
    "kvaccel-ha-sync=${out_dir}/smoke_ha_sync.json" \
    "kvaccel-ha-partition=${out_dir}/smoke_ha_partition.json" \
    "kvaccel-ndp=${out_dir}/smoke_ndp_auto.json" \
    "kvaccel-openloop=${out_dir}/smoke_openloop.json"
}

mode="${1:-all}"
case "${mode}" in
  plain)
    run_pass "plain" build
    bench_smoke build
    ;;
  sanitize) run_pass "sanitize" build-asan -DKVACCEL_SANITIZE=ON ;;
  bench)
    cmake -B build -S .
    cmake --build build -j "${JOBS}"
    bench_smoke build
    ;;
  all)
    run_pass "plain" build
    bench_smoke build
    run_pass "sanitize" build-asan -DKVACCEL_SANITIZE=ON
    ;;
  *)
    echo "usage: tools/ci.sh [plain|sanitize|bench|all]" >&2
    exit 2
    ;;
esac
echo "CI OK (${mode})"
